#include "gpu/shard_engine.hh"

#include <algorithm>

#include "check/snapshot.hh"
#include "common/log.hh"

namespace libra
{

// --- ShardMemLink ------------------------------------------------------

void
ShardMemLink::access(MemReq req)
{
    libra_assert(downstream, "shard link has no downstream sink");
    Outgoing out;
    out.sentAt = shardQ.now();
    if (req.onComplete) {
        std::uint32_t slot;
        if (!freeSlots.empty()) {
            slot = freeSlots.back();
            freeSlots.pop_back();
            slots[slot] = std::move(req.onComplete);
        } else {
            slot = static_cast<std::uint32_t>(slots.size());
            slots.push_back(std::move(req.onComplete));
        }
        // The forwarded completion runs in the shared domain; it only
        // records {slot, tick} — the parked callback never crosses.
        req.onComplete = [this, slot](Tick when) {
            complete(slot, when);
        };
    }
    out.req = std::move(req);
    outbox.push_back(std::move(out));
}

void
ShardMemLink::complete(std::uint32_t slot, Tick when)
{
    const Tick deliver_at = when + engine.la;
    ++engine.engineStats.crossMessages;
    if (deliver_at < engine.windowEnd)
        ++engine.engineStats.earlyDeliveries;
    inbox.push_back(Completion{slot, deliver_at});
}

void
ShardMemLink::deliver(std::uint32_t slot)
{
    MemCallback cb = std::move(slots[slot]);
    freeSlots.push_back(slot);
    cb(shardQ.now());
}

// --- ShardRasterLink ---------------------------------------------------

void
ShardRasterLink::push(const RasterWork &work)
{
    libra_assert(credits > 0, "push to a raster link without credits");
    --credits;
    ++engine.engineStats.crossMessages;
    pushBuf.push_back(PendingPush{engine.shared.now(), work});
}

void
ShardRasterLink::returnCredit()
{
    creditBuf.push_back(shardQ.now());
}

void
ShardRasterLink::applyCredit()
{
    ++credits;
    if (onSpaceFreed)
        onSpaceFreed();
}

void
ShardRasterLink::deliverFront()
{
    libra_assert(!inFlight.empty(), "raster delivery without work");
    const RasterWork work = inFlight.front();
    inFlight.pop_front();
    target->push(work);
}

// --- ShardEngine -------------------------------------------------------

ShardEngine::ShardEngine(EventQueue &shared_queue,
                         std::uint32_t shard_count,
                         std::uint32_t threads, Tick lookahead_ticks,
                         std::uint32_t fifo_depth)
    : shared(shared_queue), la(std::max<Tick>(1, lookahead_ticks))
{
    libra_assert(shard_count > 0, "sharded engine needs shards");
    queues.reserve(shard_count);
    texLinks.reserve(shard_count);
    fbLinks.reserve(shard_count);
    rasterLinks.reserve(shard_count);
    for (std::uint32_t s = 0; s < shard_count; ++s) {
        queues.push_back(std::make_unique<EventQueue>());
        texLinks.push_back(
            std::make_unique<ShardMemLink>(*this, s, *queues[s]));
        fbLinks.push_back(
            std::make_unique<ShardMemLink>(*this, s, *queues[s]));
        rasterLinks.push_back(std::make_unique<ShardRasterLink>(
            *this, s, *queues[s], fifo_depth));
    }
    tileDone.resize(shard_count);
    replEvents.resize(shard_count);
    // Threads beyond the shard count can never find work: lane t only
    // ever runs shards t, t + threads, ...
    const std::uint32_t lanes = std::min(std::max(1u, threads),
                                         shard_count);
    if (lanes > 1)
        pool = std::make_unique<SimThreadPool>(lanes);
}

ShardEngine::~ShardEngine() = default;

void
ShardEngine::setDownstreams(MemSink &tex_sink, MemSink &fb_sink)
{
    for (std::size_t s = 0; s < queues.size(); ++s) {
        texLinks[s]->setDownstream(tex_sink);
        fbLinks[s]->setDownstream(fb_sink);
    }
}

void
ShardEngine::bufferTileDone(std::uint32_t shard,
                            const TileDoneInfo &info)
{
    TileDoneRecord rec;
    rec.info = info;
    if (info.colorBuffer) {
        rec.color = *info.colorBuffer;
        rec.hasColor = true;
    }
    // The pointer refers to flush-local storage; reseat it onto the
    // record's copy when the coordinator applies it.
    rec.info.colorBuffer = nullptr;
    tileDone[shard].push_back(std::move(rec));
}

void
ShardEngine::bufferReplEvent(std::uint32_t shard, Addr line,
                             bool install)
{
    replEvents[shard].push_back(ReplEvent{line, install});
}

Tick
ShardEngine::alignClocks()
{
    Tick t = shared.now();
    for (const auto &q : queues)
        t = std::max(t, q->now());
    shared.advanceTo(t);
    for (const auto &q : queues)
        q->advanceTo(t);
    return t;
}

bool
ShardEngine::anyPending() const
{
    if (!shared.empty())
        return true;
    for (const auto &q : queues) {
        if (!q->empty())
            return true;
    }
    // Work can park in a link without a scheduled event between
    // windows: the fetcher's beginFrame pushes happen outside any
    // window, and runWindow() turns them into delivery events.
    for (std::uint32_t s = 0; s < shardCount(); ++s) {
        if (!texLinks[s]->outbox.empty() || !texLinks[s]->inbox.empty()
            || !fbLinks[s]->outbox.empty()
            || !fbLinks[s]->inbox.empty()
            || !rasterLinks[s]->pushBuf.empty()
            || !rasterLinks[s]->creditBuf.empty()) {
            return true;
        }
    }
    return false;
}

Tick
ShardEngine::maxNow() const
{
    Tick t = shared.now();
    for (const auto &q : queues)
        t = std::max(t, q->now());
    return t;
}

std::uint64_t
ShardEngine::shardEventsExecuted() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues)
        n += q->eventsExecuted();
    return n;
}

std::size_t
ShardEngine::shardPendingEvents() const
{
    std::size_t n = 0;
    for (const auto &q : queues)
        n += q->pending();
    return n;
}

void
ShardEngine::runInject(std::size_t index)
{
    Inject &in = injects[index];
    in.sink->access(std::move(in.req));
}

void
ShardEngine::mergeShardOutput(std::uint32_t s)
{
    // Fixed per-shard drain order (credits, tile results, replication,
    // texture fills, flush writes); with the fixed shard iteration
    // order in runWindow() this makes every injection's (tick, seq)
    // position a pure function of simulated state.
    ShardRasterLink &rl = *rasterLinks[s];
    for (const Tick t : rl.creditBuf) {
        ShardRasterLink *link = &rl;
        shared.schedule(t, [link] { link->applyCredit(); });
    }
    rl.creditBuf.clear();

    for (TileDoneRecord &rec : tileDone[s]) {
        if (rec.hasColor)
            rec.info.colorBuffer = &rec.color;
        applyTileDone(rec.info);
    }
    tileDone[s].clear();

    if (replTracker) {
        for (const ReplEvent &ev : replEvents[s]) {
            if (ev.install)
                replTracker->recordInstall(ev.line);
            else
                replTracker->recordEvict(ev.line);
        }
    }
    replEvents[s].clear();

    for (ShardMemLink *link : {texLinks[s].get(), fbLinks[s].get()}) {
        for (ShardMemLink::Outgoing &out : link->outbox) {
            ++engineStats.crossMessages;
            const std::size_t index = injects.size();
            injects.push_back(
                Inject{link->downstream, std::move(out.req)});
            ShardEngine *eng = this;
            shared.schedule(out.sentAt,
                            [eng, index] { eng->runInject(index); });
        }
        link->outbox.clear();
    }
}

void
ShardEngine::deliverSharedOutput(std::uint32_t s)
{
    EventQueue &q = *queues[s];
    for (ShardMemLink *link : {texLinks[s].get(), fbLinks[s].get()}) {
        for (const ShardMemLink::Completion &c : link->inbox) {
            ShardMemLink *l = link;
            const std::uint32_t slot = c.slot;
            q.schedule(c.deliverAt, [l, slot] { l->deliver(slot); });
        }
        link->inbox.clear();
    }
    ShardRasterLink &rl = *rasterLinks[s];
    for (const ShardRasterLink::PendingPush &p : rl.pushBuf) {
        rl.inFlight.push_back(p.work);
        ShardRasterLink *link = &rl;
        q.schedule(p.sentAt + la, [link] { link->deliverFront(); });
    }
    rl.pushBuf.clear();
}

void
ShardEngine::runWindow()
{
    // Turn anything parked outside a window (the fetcher's beginFrame
    // pushes) into scheduled delivery events so it participates in the
    // window-start computation below.
    for (std::uint32_t s = 0; s < shardCount(); ++s)
        deliverSharedOutput(s);

    // Window start: the earliest pending tick anywhere. Jumping to it
    // (rather than sliding W by L) skips idle stretches entirely.
    Tick start = shared.nextEventTick();
    for (const auto &q : queues)
        start = std::min(start, q->nextEventTick());
    libra_assert(start != maxTick, "runWindow with no pending events");

    windowEnd = start + la;
    const Tick limit = windowEnd - 1;

    // --- Phase A: RU shards over [start, windowEnd) --------------------
    activeList.clear();
    for (std::uint32_t s = 0; s < shardCount(); ++s) {
        if (queues[s]->nextEventTick() <= limit)
            activeList.push_back(s);
    }
    if (pool && activeList.size() > 1) {
        ++engineStats.parallelWindows;
        pool->parallelFor(
            static_cast<std::uint32_t>(activeList.size()),
            [this, limit](std::uint32_t i) {
                queues[activeList[i]]->runUntil(limit);
            });
    } else {
        for (const std::uint32_t s : activeList)
            queues[s]->runUntil(limit);
    }

    // --- Barrier: merge RU → shared in (shard, seq) order --------------
    for (std::uint32_t s = 0; s < shardCount(); ++s)
        mergeShardOutput(s);

    // --- Phase B: shared domain over the same window --------------------
    shared.runUntil(limit);

    // --- Barrier: schedule shared → RU deliveries ----------------------
    for (std::uint32_t s = 0; s < shardCount(); ++s)
        deliverSharedOutput(s);
    injects.clear();

    ++engineStats.windows;
}

void
ShardEngine::saveState(SnapshotWriter &w) const
{
    libra_assert(!anyPending(), "engine snapshot with pending events");
    libra_assert(injects.empty(), "engine snapshot mid-window");
    w.putU64(queues.size());
    for (std::uint32_t s = 0; s < shardCount(); ++s) {
        const ShardMemLink &tex = *texLinks[s];
        const ShardMemLink &fb = *fbLinks[s];
        const ShardRasterLink &rl = *rasterLinks[s];
        libra_assert(tex.outbox.empty() && tex.inbox.empty()
                         && tex.slots.size() == tex.freeSlots.size(),
                     "engine snapshot with tex-link traffic in flight");
        libra_assert(fb.outbox.empty() && fb.inbox.empty()
                         && fb.slots.size() == fb.freeSlots.size(),
                     "engine snapshot with fb-link traffic in flight");
        libra_assert(rl.pushBuf.empty() && rl.creditBuf.empty()
                         && rl.inFlight.empty()
                         && rl.credits == rl.maxCredits,
                     "engine snapshot with raster-link work in flight");
        libra_assert(tileDone[s].empty() && replEvents[s].empty(),
                     "engine snapshot with unapplied tile events");
        queues[s]->exportState(w);
    }
    w.putU64(windowEnd);
    w.putU64(engineStats.windows);
    w.putU64(engineStats.parallelWindows);
    w.putU64(engineStats.crossMessages);
    w.putU64(engineStats.earlyDeliveries);
}

void
ShardEngine::loadState(SnapshotReader &r)
{
    if (!r.check(r.takeU64() == queues.size(),
                 "shard count mismatches the configuration"))
        return;
    for (std::uint32_t s = 0; s < shardCount(); ++s)
        queues[s]->importState(r);
    windowEnd = r.takeU64();
    engineStats.windows = r.takeU64();
    engineStats.parallelWindows = r.takeU64();
    engineStats.crossMessages = r.takeU64();
    engineStats.earlyDeliveries = r.takeU64();
}

} // namespace libra
