#include "gpu/raster/blend_unit.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"

namespace libra
{

BlendUnit::BlendUnit(std::uint32_t tile_size, std::uint32_t quads_per_cycle)
    : tileSize(tile_size), quadsPerCycle(std::max(quads_per_cycle, 1u))
{
    color.resize(static_cast<std::size_t>(tile_size) * tile_size, 0);
}

void
BlendUnit::beginTile(const IRect &tile_rect)
{
    rect = tile_rect;
    std::fill(color.begin(), color.end(), 0);
}

Tick
BlendUnit::acceptQuads(Tick ready, std::uint32_t quads)
{
    const Tick cycles = (quads + quadsPerCycle - 1) / quadsPerCycle;
    readyAt = std::max(readyAt, ready) + std::max<Tick>(cycles, 1);
    quadsBlended += quads;
    return readyAt;
}

void
BlendUnit::blendQuad(const Quad &quad, std::uint32_t prim_id)
{
    for (int bit = 0; bit < 4; ++bit) {
        if (!(quad.mask & (1 << bit)))
            continue;
        const std::int32_t px = quad.px + (bit & 1);
        const std::int32_t py = quad.py + (bit >> 1);
        libra_assert(rect.contains(px, py),
                     "blended fragment outside the current tile");
        const std::size_t idx =
            static_cast<std::size_t>(py - rect.y0) * tileSize
            + static_cast<std::size_t>(px - rect.x0);
        // Order-sensitive mix: the final value depends on the sequence
        // of writes to this pixel, exactly like real blending does.
        color[idx] = hashCombine(color[idx], prim_id + 1);
        ++fragmentsWritten;
    }
}

} // namespace libra
