/**
 * @file
 * One Raster Unit: the private rasterization/shading slice of the GPU
 * that renders one tile at a time (paper Fig. 5).
 *
 * A Raster Unit owns a rasterizer front-end, an Early-Z stage with a
 * tile-sized Z-buffer, a set of multithreaded shader cores (each with a
 * private L1 texture cache), a blending unit with the on-chip Color
 * Buffer, and the flush DMA that writes finished tiles to the Frame
 * Buffer in DRAM. Parallel tile rendering instantiates several Raster
 * Units, each fed by its own FIFO of primitives (§III-A).
 *
 * Stage barriers follow the paper: a tile may be rasterized while the
 * previous tile is still in the Fragment stage (double-buffered Z and
 * Color buffers), but its warps only dispatch once the previous tile has
 * completely left the Fragment stage, blend commits are in program
 * order, and flushes serialize on the DMA engine. These barriers are
 * what keep small tiles from filling many cores (Fig. 4).
 */

#ifndef LIBRA_GPU_RASTER_RASTER_UNIT_HH
#define LIBRA_GPU_RASTER_RASTER_UNIT_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "gpu/raster/blend_unit.hh"
#include "gpu/raster/early_z.hh"
#include "gpu/raster/rasterizer.hh"
#include "gpu/raster/shader_core.hh"
#include "gpu/tiling/polygon_list_builder.hh"
#include "gpu/tiling/tile_grid.hh"
#include "sim/event_queue.hh"
#include "sim/trace_sink.hh"
#include "workload/texture.hh"

namespace libra
{

/**
 * Where a Raster Unit's cycles go (paper Fig. 1/Fig. 6 taxonomy). At
 * any tick the unit is attributed to exactly one phase, chosen by
 * priority: active shading hides everything beneath it, waits are only
 * charged when no core can issue, rasterization only when no warp is
 * resident, blend/flush only when the back-end is all that remains.
 */
enum class RuPhase : std::uint8_t
{
    Rasterize,   //!< front-end scanning / Early-Z busy
    Shade,       //!< at least one core actively issuing ALU/tail work
    TextureWait, //!< warps blocked on texture data, hits in flight
    DramWait,    //!< warps blocked with L1 misses outstanding below
    Blend,       //!< in-order blend commit / flush DMA wrapping up
    Idle         //!< nothing queued, nothing in flight
};

constexpr std::size_t kNumRuPhases = 6;

/** Lower-case stat/report name of a phase ("texture_wait", ...). */
const char *ruPhaseName(RuPhase phase);

/**
 * Wall-clock partition of one Raster Unit's time over the RuPhases.
 * transition() charges the span since the previous update to the
 * phase that was current; by construction the six counters always sum
 * to the total time covered, which is what lets a per-frame delta be
 * checked against the frame's cycle count exactly.
 */
class RuPhaseTracker
{
  public:
    /** Register the six counters ("phase_rasterize", ...) on @p g. */
    void registerStats(StatGroup &g);

    void
    transition(RuPhase next, Tick now)
    {
        counters[static_cast<std::size_t>(cur)] += now - last;
        last = now;
        cur = next;
    }

    /** Charge time up to @p now to the current phase (frame edges). */
    void sync(Tick now) { transition(cur, now); }

    RuPhase current() const { return cur; }

    std::uint64_t
    cycles(RuPhase phase) const
    {
        return counters[static_cast<std::size_t>(phase)].value();
    }

    /** All six counters in RuPhase declaration order. */
    std::array<std::uint64_t, kNumRuPhases>
    snapshot() const
    {
        std::array<std::uint64_t, kNumRuPhases> out{};
        for (std::size_t i = 0; i < kNumRuPhases; ++i)
            out[i] = counters[i].value();
        return out;
    }

    /** Tick of the last transition (snapshot save support; the six
     *  counters themselves are registered and restored via StatGroup). */
    Tick lastTransition() const { return last; }

    /** Reinstate the edge state saved by a snapshot. */
    void
    restore(RuPhase phase, Tick at)
    {
        cur = phase;
        last = at;
    }

  private:
    std::array<Counter, kNumRuPhases> counters;
    RuPhase cur = RuPhase::Idle;
    Tick last = 0;
};

/** One entry of a Raster Unit's input FIFO. */
struct RasterWork
{
    enum class Kind
    {
        TileBegin,
        Prim,
        TileEnd
    };

    Kind kind = Kind::Prim;
    TileId tile = 0;
    std::uint32_t primIndex = 0; //!< index into the binned frame
};

/**
 * Consumer interface of the Tile Fetcher: a Raster Unit's input FIFO.
 * Extracted so the fetcher can be unit-tested against a mock consumer.
 */
class RasterSink
{
  public:
    virtual ~RasterSink() = default;

    /** True when the FIFO can accept one more entry. */
    virtual bool canPush() const = 0;

    /** Push one entry; only legal when canPush(). */
    virtual void push(const RasterWork &work) = 0;

    /** Invoked by the consumer whenever FIFO space frees up. */
    std::function<void()> onSpaceFreed;
};

/**
 * Frame-independent content hash of a primitive: identical geometry
 * with identical state hashes identically even when its index in the
 * frame's triangle list changes. Shared identity basis of the two
 * redundancy-elimination mechanisms: transaction elimination hashes a
 * tile's *rendered* quads with it, Rendering Elimination hashes a
 * tile's *binned* list with it (Gpu's input-signature stage).
 */
std::uint64_t primContentHash(const Triangle &tri);

/** Per-tile result reported when a tile's flush completes. */
struct TileDoneInfo
{
    TileId tile = 0;
    Tick flushedAt = 0;
    std::uint64_t instructions = 0;
    std::uint64_t warps = 0;
    std::uint64_t fragments = 0;
    std::uint64_t signature = 0; //!< content hash (transaction elim.)
    bool flushElided = false;    //!< write skipped: content unchanged
    const std::vector<std::uint64_t> *colorBuffer = nullptr;
    IRect rect;
};

/** Raster Unit configuration slice. */
struct RasterUnitConfig
{
    std::uint32_t index = 0;
    std::uint32_t tileSize = 32;
    std::uint32_t cores = 4;
    std::uint32_t warpsPerCore = 12;
    std::uint32_t warpQuads = 8;
    std::uint32_t pendingWarpsPerCore = 4;
    std::uint32_t rasterQuadsPerCycle = 4;
    std::uint32_t earlyZQuadsPerCycle = 4;
    std::uint32_t blendQuadsPerCycle = 4;
    std::uint32_t flushLinesPerCycle = 1;
    std::uint32_t fifoDepth = 64;
    bool captureImage = false;

    /**
     * Extensions beyond the paper's baseline TBR model (both default
     * off so the reproduction matches the paper):
     *
     * - transactionElimination: skip the frame-buffer flush when the
     *   tile's content signature matches the previous frame's (ARM
     *   Transaction Elimination).
     * - fbCompressionRatio: fraction of the color buffer actually
     *   written on flush (ARM AFBC-style framebuffer compression);
     *   1.0 = uncompressed.
     */
    bool transactionElimination = false;
    double fbCompressionRatio = 1.0;
};

class RasterUnit : public RasterSink
{
  public:
    /**
     * @param texture_l1s one private L1 per core, owned by the caller
     *        (they connect to the shared L2).
     */
    RasterUnit(EventQueue &eq, const RasterUnitConfig &cfg,
               const TileGrid &tile_grid, MemSink &frame_buffer_sink,
               std::vector<Cache *> texture_l1s);

    /** Arm the unit for a frame (must be idle). */
    void beginFrame(const BinnedFrame &binned, const TexturePool &pool);

    // --- FIFO interface used by the Tile Fetcher (RasterSink) ----------
    bool canPush() const override
    {
        return fifo.size() < config.fifoDepth;
    }
    void push(const RasterWork &work) override;

    /** Invoked when a tile has been flushed to the Frame Buffer. */
    std::function<void(const TileDoneInfo &)> onTileDone;

    /** True when no tile is in flight and the FIFO is empty. */
    bool idle() const;

    // --- Watchdog diagnostics ------------------------------------------
    /** Entries currently queued in the input FIFO. */
    std::size_t fifoEntries() const { return fifo.size(); }

    /** Tile owning the Fragment stage (invalidId when none). */
    TileId currentTile() const { return frag ? frag->tile : invalidId; }

    /** Tile being rasterized ahead (invalidId when none). */
    TileId aheadTile() const { return ahead ? ahead->tile : invalidId; }

    /** Warps assembled but not yet dispatched to a core. */
    std::size_t pendingWarpCount() const { return pendingWarps.size(); }

    const RasterUnitConfig &cfg() const { return config; }
    ShaderCore &core(std::uint32_t i) { return *cores[i]; }
    std::uint32_t coreCount() const
    {
        return static_cast<std::uint32_t>(cores.size());
    }

    // Statistics.
    Counter primsRasterized;
    Counter quadsProduced;   //!< quads surviving Early-Z
    Counter warpsLaunched;
    Counter tilesRendered;
    Counter flushBytes;
    Counter texLatencySum;   //!< summed L1-to-data latencies
    Counter texRequests;
    Counter fragmentsShaded;
    Counter flushesElided; //!< tiles whose FB write was eliminated

    /**
     * Transaction-elimination hook, installed by the GPU: returns true
     * when @p signature differs from the tile's previous-frame content
     * (i.e. the flush must happen) and records the new signature.
     */
    std::function<bool(TileId, std::uint64_t)> flushNeeded;

    StatGroup &stats() { return statGroup; }

    // --- Observability --------------------------------------------------
    /** Cycle attribution over the RuPhases (always on; the counters
     *  are registered under this unit's stat group). */
    const RuPhaseTracker &phases() const { return phaseTracker; }

    /** Charge time up to @p now to the current phase. The GPU calls
     *  this at frame boundaries so per-frame deltas partition the
     *  frame exactly. */
    void syncPhase(Tick now) { phaseTracker.sync(now); }

    /**
     * Serialize persistent state (dispatch rotation, front/flush
     * clocks, phase-tracker edge, per-core state) for a frame-boundary
     * snapshot. Asserts the unit is idle; registered counters are
     * restored separately via the StatGroup.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restore what saveState() wrote. */
    void loadState(SnapshotReader &r);

    /**
     * Attach a chrome-trace lane: every tile's residency in this unit
     * is emitted as an async span (tiles overlap — the run-ahead tile
     * rasterizes while the previous one shades). @p tile_name_id must
     * come from the same TraceSink's nameId().
     */
    void
    setTraceLane(TraceSink::Lane *lane, std::uint32_t tile_name_id)
    {
        traceLane = lane;
        traceTileName = tile_name_id;
    }

  private:
    /** All state for one tile being processed. */
    struct TileCtx
    {
        TileCtx(std::uint32_t tile_size, std::uint32_t blend_rate)
            : zbuf(tile_size), blender(tile_size, blend_rate)
        {}

        TileId tile = 0;
        IRect rect;
        bool endSeen = false;
        bool completing = false;      //!< completion event scheduled
        std::uint32_t nextSeq = 0;    //!< warps assembled so far
        std::uint32_t nextCommit = 0; //!< warps blended so far
        std::uint64_t instructions = 0;
        std::uint64_t fragments = 0;
        std::uint64_t warps = 0;
        std::uint64_t signature = 0; //!< order-sensitive content hash
        Tick lastBlendDone = 0;
        EarlyZ zbuf;
        BlendUnit blender;

        /** Retired warps waiting for in-order blend commit. */
        struct RetiredWarp
        {
            WarpRetireInfo info;
            std::vector<Quad> quads;
            std::uint32_t primId;
            std::uint64_t primSig;
        };
        std::map<std::uint32_t, RetiredWarp> retired;
    };

    /** A warp assembled but not yet dispatched to a core. */
    struct PendingWarp
    {
        TileCtx *ctx;
        std::uint32_t seq;
        std::uint32_t primId;
        std::uint64_t primSig; //!< content hash (frame-independent)
        WarpTask task;
        std::vector<Quad> quads;
    };

    /** The phase the unit is in at @p now (see RuPhase priorities). */
    RuPhase phaseNow(Tick now) const;

    /** Re-evaluate and charge the phase attribution at queue.now(). */
    void updatePhase();

    void tryAdvance();
    void processWork(const RasterWork &work);
    void rasterizePrim(std::uint32_t prim_index);
    void emitWarp(TileCtx &ctx, const Triangle &tri,
                  std::uint32_t prim_index, std::vector<Quad> quads);
    void dispatchPending();
    void onWarpRetired(TileCtx *ctx, std::uint32_t seq,
                       std::uint32_t prim_id, std::uint64_t prim_sig,
                       std::vector<Quad> quads,
                       const WarpRetireInfo &info);
    void commitReadyWarps(TileCtx &ctx);
    void maybeCompleteTile();
    void startFlush();

    /** Tile ctx the rasterizer front currently fills. */
    TileCtx *rasterCtx() { return ahead ? ahead.get() : frag.get(); }

    EventQueue &queue;
    RasterUnitConfig config;
    const TileGrid &grid;
    MemSink &fbSink;

    std::vector<std::unique_ptr<ShaderCore>> cores;
    std::uint32_t nextCore = 0;

    const BinnedFrame *frame = nullptr;
    const TexturePool *texPool = nullptr;

    /** Per-frame memoization of TriangleSetup, indexed by primitive.
     *  Setup is a pure function of the triangle and its texture, and a
     *  primitive binned into many tiles is rasterized once per tile —
     *  the setup (winding, edges, gradients, a sqrt for the LOD) only
     *  needs computing the first time. Reset by beginFrame(). */
    std::vector<std::optional<TriangleSetup>> setupCache;

    /** Scratch for rasterizePrim, reused across primitives so the
     *  steady state performs no allocation. Only live within one
     *  rasterizePrim call (never across events). */
    RasterOutput rasterScratch;
    std::vector<Quad> survivorScratch;

    std::deque<RasterWork> fifo;
    Tick frontReadyAt = 0;
    bool advanceScheduled = false;
    bool inAdvance = false;

    std::unique_ptr<TileCtx> frag;  //!< tile owning the Fragment stage
    std::unique_ptr<TileCtx> ahead; //!< tile being rasterized ahead

    std::deque<PendingWarp> pendingWarps;
    std::uint32_t maxPendingWarps;

    Tick flushReadyAt = 0;

    RuPhaseTracker phaseTracker;
    TraceSink::Lane *traceLane = nullptr;
    std::uint32_t traceTileName = 0;

    StatGroup statGroup;
};

} // namespace libra

#endif // LIBRA_GPU_RASTER_RASTER_UNIT_HH
