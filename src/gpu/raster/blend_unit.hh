/**
 * @file
 * Blending Unit and on-chip Color Buffer (paper §II-A).
 *
 * Output colors are combined into the tile-sized on-chip Color Buffer at
 * a fixed quad rate; no DRAM traffic happens here. The unit also keeps
 * an optional functional "image": a per-pixel order-sensitive hash of
 * the fragments written, used by the tests to prove that tile scheduling
 * never changes the rendered output.
 */

#ifndef LIBRA_GPU_RASTER_BLEND_UNIT_HH
#define LIBRA_GPU_RASTER_BLEND_UNIT_HH

#include <cstdint>
#include <vector>

#include "common/geom.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "gpu/raster/rasterizer.hh"

namespace libra
{

/** Per-tile blender with a busy-until throughput model. */
class BlendUnit
{
  public:
    BlendUnit(std::uint32_t tile_size, std::uint32_t quads_per_cycle);

    /** Start a new tile at @p rect; clears the color buffer. */
    void beginTile(const IRect &rect);

    /**
     * Accept @p quads quads that became ready at @p ready.
     * @return the tick blending of this batch completes.
     */
    Tick acceptQuads(Tick ready, std::uint32_t quads);

    /** Functionally blend a quad into the hash image. */
    void blendQuad(const Quad &quad, std::uint32_t prim_id);

    /** Color-buffer contents for the current tile (pixel hashes). */
    const std::vector<std::uint64_t> &colorBuffer() const { return color; }

    const IRect &tileRect() const { return rect; }

    Counter quadsBlended;
    Counter fragmentsWritten;

  private:
    std::uint32_t tileSize;
    std::uint32_t quadsPerCycle;
    IRect rect;
    Tick readyAt = 0;
    std::vector<std::uint64_t> color;
};

} // namespace libra

#endif // LIBRA_GPU_RASTER_BLEND_UNIT_HH
