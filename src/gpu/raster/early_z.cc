#include "gpu/raster/early_z.hh"

#include <algorithm>

#include "common/log.hh"

namespace libra
{

EarlyZ::EarlyZ(std::uint32_t tile_size)
    : tileSize(tile_size)
{
    libra_assert(tile_size > 0, "zero tile size");
    depth.resize(static_cast<std::size_t>(tile_size) * tile_size, 1.0f);
}

void
EarlyZ::beginTile(const IRect &tile_rect)
{
    rect = tile_rect;
    std::fill(depth.begin(), depth.end(), 1.0f);
}

std::uint8_t
EarlyZ::testQuad(Quad &quad, bool write_depth)
{
    ++quadsTested;
    std::uint8_t surviving = 0;
    for (int bit = 0; bit < 4; ++bit) {
        if (!(quad.mask & (1 << bit)))
            continue;
        const std::int32_t px = quad.px + (bit & 1);
        const std::int32_t py = quad.py + (bit >> 1);
        libra_assert(rect.contains(px, py),
                     "covered fragment outside the current tile");
        const std::size_t idx =
            static_cast<std::size_t>(py - rect.y0) * tileSize
            + static_cast<std::size_t>(px - rect.x0);
        if (quad.z[bit] < depth[idx]) {
            surviving |= static_cast<std::uint8_t>(1 << bit);
            if (write_depth)
                depth[idx] = quad.z[bit];
        } else {
            ++fragmentsKilled;
        }
    }
    if (surviving == 0)
        ++quadsKilled;
    quad.mask = surviving;
    return surviving;
}

} // namespace libra
