/**
 * @file
 * Edge-function rasterizer: discretizes one primitive inside one tile
 * into 2x2-fragment quads (paper §II-A).
 *
 * The rasterizer also interpolates the primitive's attributes: per-pixel
 * depth for Early-Z, the texture coordinate at each quad's center and
 * the per-primitive LOD (mip level) from the screen-space uv gradients.
 * Coverage follows a top-left fill rule so triangles sharing an edge
 * cover every pixel exactly once — the property that makes the final
 * image independent of tile scheduling.
 */

#ifndef LIBRA_GPU_RASTER_RASTERIZER_HH
#define LIBRA_GPU_RASTER_RASTERIZER_HH

#include <cstdint>
#include <vector>

#include "common/geom.hh"
#include "workload/texture.hh"

namespace libra
{

/** A 2x2 block of fragments produced by the rasterizer. */
struct Quad
{
    std::uint16_t px = 0;    //!< screen x of the quad's top-left pixel
    std::uint16_t py = 0;    //!< screen y
    std::uint8_t mask = 0;   //!< coverage bits: (0,0),(1,0),(0,1),(1,1)
    std::uint8_t mip = 0;    //!< selected texture LOD
    float z[4] = {0, 0, 0, 0}; //!< interpolated depth per fragment
    Vec2 uv;                 //!< interpolated uv at the quad center

    int
    coveredCount() const
    {
        return (mask & 1) + ((mask >> 1) & 1) + ((mask >> 2) & 1)
            + ((mask >> 3) & 1);
    }
};

/** Result of rasterizing one primitive in one tile. */
struct RasterOutput
{
    std::vector<Quad> quads;   //!< quads with nonzero coverage
    std::uint32_t blocksScanned = 0; //!< 2x2 blocks visited (timing)
};

/**
 * Per-primitive setup computed once and reused for each covered tile:
 * normalized winding, edge coefficients, attribute gradients and LOD.
 */
class TriangleSetup
{
  public:
    TriangleSetup(const Triangle &tri, const Texture &tex);

    /** Rasterize into @p rect (usually one tile), appending quads. */
    void rasterize(const IRect &rect, RasterOutput &out) const;

    std::uint8_t mip() const { return _mip; }
    float texelsPerPixel() const { return _texelsPerPixel; }

  private:
    /** Edge function value of edge i at pixel center (x+.5, y+.5). */
    float edgeAt(int i, float x, float y) const;

    Vec2 v[3];       //!< winding-normalized positions
    Vec2 uvs[3];
    float zs[3];
    float area2 = 0.0f;
    // Edge i runs v[i] → v[(i+1)%3]; exact-zero coverage uses the
    // top-left rule precomputed per edge.
    Vec2 edgeVec[3];
    bool edgeAccepts[3];
    // Attribute gradients (affine interpolation).
    float dzdx = 0.0f, dzdy = 0.0f, z0 = 0.0f;
    Vec2 dudx, dudy; //!< (du/dx, dv/dx) and (du/dy, dv/dy) packed
    Vec2 uv0;
    std::uint8_t _mip = 0;
    float _texelsPerPixel = 1.0f;
};

} // namespace libra

#endif // LIBRA_GPU_RASTER_RASTERIZER_HH
