/**
 * @file
 * Multithreaded shader core executing fragment-shader warps.
 *
 * Each core keeps several warps (32 threads = 8 quads) resident and
 * single-issues among them: a warp runs its ALU block, issues its
 * texture samples to the core's private L1 Texture cache, blocks until
 * the data returns, runs a short tail (color export) and retires. Memory
 * latency is hidden exactly as far as other resident warps have issue
 * work — when every warp is blocked on textures the core idles, which is
 * how DRAM congestion becomes lost performance (paper Fig. 4 / Fig. 6).
 */

#ifndef LIBRA_GPU_RASTER_SHADER_CORE_HH
#define LIBRA_GPU_RASTER_SHADER_CORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/callback.hh"
#include "sim/event_queue.hh"

namespace libra
{

/** A warp's worth of fragment work, assembled by the Raster Unit. */
struct WarpTask
{
    TileId tile = 0;
    std::uint32_t quadCount = 0;   //!< quads packed into the warp
    std::uint32_t fragments = 0;   //!< covered fragments (color writes)
    std::uint16_t aluOps = 8;      //!< main ALU block, cycles per warp
    bool blend = false;
    std::vector<Addr> texLines;    //!< texture lines to sample
    std::uint64_t instructions = 0; //!< counted for the temperature table
};

/** Data handed back when a warp finishes shading (pre-blend). */
struct WarpRetireInfo
{
    TileId tile;
    Tick shadedAt;              //!< tick the tail block finished
    std::uint64_t instructions;
    std::uint64_t texRequests;
    std::uint64_t texLatencySum; //!< sum of per-request L1 latencies
    std::uint32_t quadCount;
    std::uint32_t fragments;
    bool blend;
};

/**
 * Retirement callback of one warp. 64 bytes of inline capture: enough
 * for the Raster Unit's retire continuation (owner, tile context, warp
 * identity and the moved-in quad vector) without any heap allocation —
 * a warp is dispatched for every ~8 quads of every primitive, so the
 * std::function this replaces allocated on a very hot path.
 */
using WarpRetireCallback = SmallCallback<void(const WarpRetireInfo &), 64>;

/** One shader core with a private L1 texture cache. */
class ShaderCore
{
  public:
    /** Cycles of tail work (attribute export etc.) per warp. */
    static constexpr Tick tailOps = 2;

    ShaderCore(EventQueue &eq, std::uint32_t warp_slots,
               Cache &texture_l1, const std::string &name);

    /** True when a new warp can become resident. */
    bool hasFreeSlot() const { return residentWarps < warpSlots; }

    std::uint32_t freeSlots() const { return warpSlots - residentWarps; }
    std::uint32_t resident() const { return residentWarps; }

    /**
     * Make @p task resident and start executing it. @p on_retire fires
     * once, at the tick the warp's shading completes; the slot is freed
     * just before the callback runs (blending happens downstream in the
     * Raster Unit's export queue and does not hold the slot).
     */
    void dispatch(WarpTask task, WarpRetireCallback on_retire);

    Cache &textureL1() { return texL1; }
    const Cache &textureL1() const { return texL1; }

    /** Issue cycles consumed — core utilization numerator. */
    std::uint64_t busyCycles() const { return issueBusy.value(); }

    /** Tick the issue port becomes free; the core is actively issuing
     *  (ALU/tail work) at any tick before this. */
    Tick issueBusyUntil() const { return issueReadyAt; }

    /**
     * Invoked whenever a resident warp changes execution state (enters
     * its texture-wait, resumes for the tail block). The owning Raster
     * Unit uses it to re-evaluate its phase attribution; may be empty.
     * Fires on every warp state transition, hence the allocation-free
     * callback type (the only producer captures one pointer).
     */
    SmallCallback<void(), 16> onStateChange;

    Counter warpsExecuted;
    Counter issueBusy;
    Counter texRequests;
    Counter texLatencySum;

    /**
     * Serialize persistent state (issue-port clock plus the four
     * counters above, which are not registered in any StatGroup) for a
     * frame-boundary snapshot. Asserts no warps are resident.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restore what saveState() wrote. */
    void loadState(SnapshotReader &r);

  private:
    /** Shared state of one in-flight warp (defined in shader_core.cc).
     *  Everything the warp's events need lives here so each event
     *  captures only {this, flight} — inside the inline capacity of
     *  EventCallback/MemCallback. */
    struct Flight;

    /** Reserve @p cycles of the issue port; returns completion tick. */
    Tick reserveIssue(Tick earliest, Tick cycles);

    /** Issue every texture sample of @p flight to the L1. */
    void issueTexPhase(const std::shared_ptr<Flight> &flight);

    /** One texture line returned at @p when. */
    void onTexData(const std::shared_ptr<Flight> &flight, Tick when);

    /** Data complete at @p data_ready: run the tail block, schedule
     *  retirement. */
    void finishWarp(const std::shared_ptr<Flight> &flight,
                    Tick data_ready);

    /** Free the slot and fire the retire callback. */
    void retireWarp(const std::shared_ptr<Flight> &flight);

    EventQueue &queue;
    std::uint32_t warpSlots;
    Cache &texL1;
    std::uint32_t residentWarps = 0;
    Tick issueReadyAt = 0;
};

} // namespace libra

#endif // LIBRA_GPU_RASTER_SHADER_CORE_HH
