#include "gpu/raster/rasterizer.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace libra
{

TriangleSetup::TriangleSetup(const Triangle &tri, const Texture &tex)
{
    v[0] = tri.v[0].pos.xy();
    v[1] = tri.v[1].pos.xy();
    v[2] = tri.v[2].pos.xy();
    uvs[0] = tri.v[0].uv;
    uvs[1] = tri.v[1].uv;
    uvs[2] = tri.v[2].uv;
    zs[0] = tri.v[0].pos.z;
    zs[1] = tri.v[1].pos.z;
    zs[2] = tri.v[2].pos.z;

    area2 = cross2(v[1] - v[0], v[2] - v[0]);
    if (area2 < 0.0f) {
        // Normalize winding so the interior is the positive side of
        // every edge function.
        std::swap(v[1], v[2]);
        std::swap(uvs[1], uvs[2]);
        std::swap(zs[1], zs[2]);
        area2 = -area2;
    }

    for (int i = 0; i < 3; ++i) {
        const Vec2 e = v[(i + 1) % 3] - v[i];
        edgeVec[i] = e;
        // Tie-break rule for pixels exactly on an edge: a boundary pixel
        // belongs to exactly one of the two triangles sharing the edge
        // (the shared edge is traversed in opposite directions, and the
        // predicate below differs under e → -e).
        edgeAccepts[i] = e.y < 0.0f || (e.y == 0.0f && e.x > 0.0f);
    }

    // Affine attribute gradients from the vertex deltas.
    const float inv_det = 1.0f / area2;
    const Vec2 d1 = v[1] - v[0];
    const Vec2 d2 = v[2] - v[0];
    auto gradient = [&](float a0, float a1, float a2, float &ddx,
                        float &ddy) {
        ddx = ((a1 - a0) * d2.y - (a2 - a0) * d1.y) * inv_det;
        ddy = ((a2 - a0) * d1.x - (a1 - a0) * d2.x) * inv_det;
    };
    gradient(zs[0], zs[1], zs[2], dzdx, dzdy);
    z0 = zs[0];
    float du_dx, du_dy, dv_dx, dv_dy;
    gradient(uvs[0].x, uvs[1].x, uvs[2].x, du_dx, du_dy);
    gradient(uvs[0].y, uvs[1].y, uvs[2].y, dv_dx, dv_dy);
    dudx = {du_dx, dv_dx};
    dudy = {du_dy, dv_dy};
    uv0 = uvs[0];

    // LOD from the larger of the two screen-axis texel footprints.
    const float w = static_cast<float>(tex.width());
    const float h = static_cast<float>(tex.height());
    const float fx = std::sqrt(du_dx * w * du_dx * w
                               + dv_dx * h * dv_dx * h);
    const float fy = std::sqrt(du_dy * w * du_dy * w
                               + dv_dy * h * dv_dy * h);
    _texelsPerPixel = std::max(fx, fy);
    _mip = tri.useMips
        ? static_cast<std::uint8_t>(
              std::min<std::uint32_t>(tex.selectMip(_texelsPerPixel), 255))
        : 0;
}

float
TriangleSetup::edgeAt(int i, float x, float y) const
{
    const Vec2 p{x, y};
    return cross2(edgeVec[i], p - v[i]);
}

void
TriangleSetup::rasterize(const IRect &rect, RasterOutput &out) const
{
    // Clip the triangle bbox to the target rectangle.
    const float min_xf = std::min({v[0].x, v[1].x, v[2].x});
    const float max_xf = std::max({v[0].x, v[1].x, v[2].x});
    const float min_yf = std::min({v[0].y, v[1].y, v[2].y});
    const float max_yf = std::max({v[0].y, v[1].y, v[2].y});
    IRect box{std::max(rect.x0,
                       static_cast<std::int32_t>(std::floor(min_xf))),
              std::max(rect.y0,
                       static_cast<std::int32_t>(std::floor(min_yf))),
              std::min(rect.x1,
                       static_cast<std::int32_t>(std::ceil(max_xf))),
              std::min(rect.y1,
                       static_cast<std::int32_t>(std::ceil(max_yf)))};
    if (box.empty())
        return;

    // Snap to even coordinates: quads are 2x2-aligned in screen space.
    const std::int32_t qx0 = box.x0 & ~1;
    const std::int32_t qy0 = box.y0 & ~1;

    for (std::int32_t qy = qy0; qy < box.y1; qy += 2) {
        for (std::int32_t qx = qx0; qx < box.x1; qx += 2) {
            ++out.blocksScanned;
            Quad quad;
            quad.px = static_cast<std::uint16_t>(qx);
            quad.py = static_cast<std::uint16_t>(qy);
            quad.mip = _mip;

            for (int bit = 0; bit < 4; ++bit) {
                const std::int32_t px = qx + (bit & 1);
                const std::int32_t py = qy + (bit >> 1);
                if (!rect.contains(px, py))
                    continue;
                const float cx = static_cast<float>(px) + 0.5f;
                const float cy = static_cast<float>(py) + 0.5f;
                bool inside = true;
                for (int e = 0; e < 3 && inside; ++e) {
                    const float w = edgeAt(e, cx, cy);
                    if (w < 0.0f || (w == 0.0f && !edgeAccepts[e]))
                        inside = false;
                }
                if (!inside)
                    continue;
                quad.mask |= static_cast<std::uint8_t>(1 << bit);
                quad.z[bit] = z0 + dzdx * (cx - v[0].x)
                    + dzdy * (cy - v[0].y);
            }

            if (quad.mask != 0) {
                const float cx = static_cast<float>(qx) + 1.0f;
                const float cy = static_cast<float>(qy) + 1.0f;
                quad.uv = {uv0.x + dudx.x * (cx - v[0].x)
                               + dudy.x * (cy - v[0].y),
                           uv0.y + dudx.y * (cx - v[0].x)
                               + dudy.y * (cy - v[0].y)};
                out.quads.push_back(quad);
            }
        }
    }
}

} // namespace libra
