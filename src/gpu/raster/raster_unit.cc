#include "gpu/raster/raster_unit.hh"

#include <algorithm>
#include <bit>
#include <memory>
#include <sstream>

#include "check/snapshot.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace libra
{

const char *
ruPhaseName(RuPhase phase)
{
    switch (phase) {
      case RuPhase::Rasterize: return "rasterize";
      case RuPhase::Shade: return "shade";
      case RuPhase::TextureWait: return "texture_wait";
      case RuPhase::DramWait: return "dram_wait";
      case RuPhase::Blend: return "blend";
      case RuPhase::Idle: return "idle";
    }
    return "?";
}

void
RuPhaseTracker::registerStats(StatGroup &g)
{
    for (std::size_t i = 0; i < kNumRuPhases; ++i) {
        g.add(std::string("phase_")
                  + ruPhaseName(static_cast<RuPhase>(i)),
              &counters[i]);
    }
}

RasterUnit::RasterUnit(EventQueue &eq, const RasterUnitConfig &cfg,
                       const TileGrid &tile_grid,
                       MemSink &frame_buffer_sink,
                       std::vector<Cache *> texture_l1s)
    : queue(eq), config(cfg), grid(tile_grid), fbSink(frame_buffer_sink),
      statGroup("ru" + std::to_string(cfg.index))
{
    libra_assert(texture_l1s.size() == cfg.cores,
                 "need one texture L1 per core");
    for (std::uint32_t i = 0; i < cfg.cores; ++i) {
        std::ostringstream name;
        name << "ru" << cfg.index << ".core" << i;
        cores.push_back(std::make_unique<ShaderCore>(
            eq, cfg.warpsPerCore, *texture_l1s[i], name.str()));
        cores.back()->onStateChange = [this] { updatePhase(); };
    }
    maxPendingWarps = cfg.pendingWarpsPerCore * cfg.cores;
    phaseTracker.registerStats(statGroup);

    statGroup.add("prims_rasterized", &primsRasterized);
    statGroup.add("quads_produced", &quadsProduced);
    statGroup.add("warps_launched", &warpsLaunched);
    statGroup.add("tiles_rendered", &tilesRendered);
    statGroup.add("flush_bytes", &flushBytes);
    statGroup.add("tex_latency_sum", &texLatencySum);
    statGroup.add("tex_requests", &texRequests);
    statGroup.add("fragments_shaded", &fragmentsShaded);
    statGroup.add("flushes_elided", &flushesElided);
}

void
RasterUnit::beginFrame(const BinnedFrame &binned, const TexturePool &pool)
{
    libra_assert(idle(), "beginFrame on a busy Raster Unit");
    frame = &binned;
    texPool = &pool;
    setupCache.clear();
    setupCache.resize(binned.tris.size());
    updatePhase();
}

void
RasterUnit::push(const RasterWork &work)
{
    libra_assert(canPush(), "push to a full FIFO");
    fifo.push_back(work);
    tryAdvance();
}

bool
RasterUnit::idle() const
{
    return !frag && !ahead && fifo.empty() && pendingWarps.empty();
}

RuPhase
RasterUnit::phaseNow(Tick now) const
{
    // Priority attribution (deepest active stage wins): a core that is
    // actively issuing hides the front-end and the memory system;
    // waits are only charged when every resident warp is blocked.
    bool any_resident = false;
    bool any_issuing = false;
    for (const auto &core : cores) {
        if (core->resident() == 0)
            continue;
        any_resident = true;
        if (core->issueBusyUntil() > now) {
            any_issuing = true;
            break;
        }
    }
    if (any_issuing)
        return RuPhase::Shade;
    if (any_resident) {
        // Every resident warp is blocked on texture data. If any of
        // this unit's L1s has a fill outstanding the wait is on the
        // memory system below (L2/DRAM); otherwise the data is an
        // in-flight L1 hit.
        for (const auto &core : cores) {
            if (core->textureL1().outstandingMisses() > 0)
                return RuPhase::DramWait;
        }
        return RuPhase::TextureWait;
    }
    if ((frag || ahead) && now < frontReadyAt)
        return RuPhase::Rasterize;
    if (frag && frag->completing)
        return RuPhase::Blend; // waiting on blend commit / flush start
    if (now < flushReadyAt)
        return RuPhase::Blend; // flush DMA draining
    if (idle())
        return RuPhase::Idle;
    // Something is queued (FIFO entries, a tile awaiting its end
    // marker) but no modeled resource is occupied this tick: the
    // front-end owns whatever happens next.
    return RuPhase::Rasterize;
}

void
RasterUnit::updatePhase()
{
    const Tick now = queue.now();
    phaseTracker.transition(phaseNow(now), now);
}

void
RasterUnit::tryAdvance()
{
    if (inAdvance)
        return;
    inAdvance = true;

    while (true) {
        const Tick now = queue.now();
        if (now < frontReadyAt) {
            if (!advanceScheduled) {
                advanceScheduled = true;
                queue.schedule(frontReadyAt, [this] {
                    advanceScheduled = false;
                    tryAdvance();
                });
            }
            break;
        }
        if (fifo.empty())
            break;

        const RasterWork &head = fifo.front();
        if (head.kind == RasterWork::Kind::TileBegin && frag && ahead) {
            // No free tile context; resumed when the fragment-stage
            // tile completes.
            break;
        }
        if (head.kind == RasterWork::Kind::Prim
            && pendingWarps.size() >= maxPendingWarps) {
            // Warp backlog full; resumed by dispatchPending().
            break;
        }

        const RasterWork work = head;
        fifo.pop_front();
        processWork(work);
        if (onSpaceFreed)
            onSpaceFreed();
    }

    inAdvance = false;
    updatePhase();
}

void
RasterUnit::processWork(const RasterWork &work)
{
    const Tick now = queue.now();
    switch (work.kind) {
      case RasterWork::Kind::TileBegin: {
        auto ctx = std::make_unique<TileCtx>(config.tileSize,
                                             config.blendQuadsPerCycle);
        ctx->tile = work.tile;
        ctx->rect = grid.tileRect(work.tile);
        ctx->zbuf.beginTile(ctx->rect);
        ctx->blender.beginTile(ctx->rect);
        LIBRA_TRACE_ASYNC_BEGIN(traceLane, traceTileName, work.tile,
                                now);
        if (!frag)
            frag = std::move(ctx);
        else
            ahead = std::move(ctx);
        frontReadyAt = now + 1;
        break;
      }
      case RasterWork::Kind::Prim:
        rasterizePrim(work.primIndex);
        break;
      case RasterWork::Kind::TileEnd: {
        TileCtx *ctx = rasterCtx();
        libra_assert(ctx && ctx->tile == work.tile,
                     "TileEnd without a matching TileBegin");
        ctx->endSeen = true;
        frontReadyAt = now + 1;
        maybeCompleteTile();
        break;
      }
    }
}

void
RasterUnit::rasterizePrim(std::uint32_t prim_index)
{
    TileCtx *ctx = rasterCtx();
    libra_assert(ctx, "primitive outside any tile");
    libra_assert(frame && prim_index < frame->tris.size(),
                 "bad primitive index");
    const Triangle &tri = frame->tris[prim_index];
    const Texture &tex = texPool->get(tri.textureId);

    std::optional<TriangleSetup> &cached = setupCache[prim_index];
    if (!cached)
        cached.emplace(tri, tex);
    const TriangleSetup &setup = *cached;
    RasterOutput &out = rasterScratch;
    out.quads.clear();
    out.blocksScanned = 0;
    setup.rasterize(ctx->rect, out);
    ++primsRasterized;

    // Early-Z: opaque primitives write depth, blended ones only test.
    std::vector<Quad> &survivors = survivorScratch;
    survivors.clear();
    for (Quad &quad : out.quads) {
        if (ctx->zbuf.testQuad(quad, !tri.blend) != 0)
            survivors.push_back(quad);
    }
    quadsProduced += survivors.size();

    // Front-end occupancy: block scan rate plus Early-Z rate.
    const Tick raster_cycles = std::max<Tick>(
        1, out.blocksScanned / std::max(config.rasterQuadsPerCycle, 1u));
    const Tick z_cycles =
        out.quads.size() / std::max(config.earlyZQuadsPerCycle, 1u);
    frontReadyAt = queue.now() + raster_cycles + z_cycles;

    // Assemble surviving quads into warps (one primitive per warp,
    // uniform shader state).
    std::size_t i = 0;
    while (i < survivors.size()) {
        const std::size_t n =
            std::min<std::size_t>(config.warpQuads, survivors.size() - i);
        std::vector<Quad> group(survivors.begin()
                                    + static_cast<std::ptrdiff_t>(i),
                                survivors.begin()
                                    + static_cast<std::ptrdiff_t>(i + n));
        emitWarp(*ctx, tri, prim_index, std::move(group));
        i += n;
    }
}

namespace
{

/**
 * Snapshot of one tile flush in progress. Shared by the flush events so
 * each captures only {this, fin} — inside the inline capacity of
 * EventCallback/MemCallback.
 */
struct PendingFlush
{
    TileDoneInfo done;
    std::shared_ptr<std::vector<std::uint64_t>> color;
    Addr fbAddr = 0;
    std::uint32_t bytes = 0;
    TileId tile = 0;
};

} // namespace

std::uint64_t
primContentHash(const Triangle &tri)
{
    std::uint64_t h = tri.textureId;
    h = hashCombine(h, (static_cast<std::uint64_t>(tri.shaderAluOps)
                        << 2)
                           ^ (tri.blend ? 1 : 0)
                           ^ (tri.useMips ? 2 : 0));
    for (const auto &v : tri.v) {
        h = hashCombine(h, std::bit_cast<std::uint32_t>(v.pos.x));
        h = hashCombine(h, std::bit_cast<std::uint32_t>(v.pos.y));
        h = hashCombine(h, std::bit_cast<std::uint32_t>(v.pos.z));
        h = hashCombine(h, std::bit_cast<std::uint32_t>(v.uv.x));
        h = hashCombine(h, std::bit_cast<std::uint32_t>(v.uv.y));
    }
    return h;
}

void
RasterUnit::emitWarp(TileCtx &ctx, const Triangle &tri,
                     std::uint32_t prim_index, std::vector<Quad> quads)
{
    const Texture &tex = texPool->get(tri.textureId);

    WarpTask task;
    task.tile = ctx.tile;
    task.quadCount = static_cast<std::uint32_t>(quads.size());
    task.aluOps = tri.shaderAluOps;
    task.blend = tri.blend;
    for (const Quad &quad : quads) {
        task.fragments += static_cast<std::uint32_t>(quad.coveredCount());
        for (std::uint8_t s = 0; s < tri.texSamples; ++s) {
            // Sample 0 reads the interpolated uv; additional samples
            // model secondary maps in another region of the sheet.
            const Vec2 uv = s == 0
                ? quad.uv
                : Vec2{quad.uv.x * 0.5f + 0.27f,
                       quad.uv.y * 0.5f + 0.61f};
            task.texLines.push_back(tex.lineAddr(uv.x, uv.y, quad.mip));
        }
    }
    task.instructions = static_cast<std::uint64_t>(task.aluOps)
        + task.texLines.size() + ShaderCore::tailOps;

    PendingWarp pending;
    pending.ctx = &ctx;
    pending.seq = ctx.nextSeq++;
    pending.primId = prim_index;
    pending.primSig = config.transactionElimination
        ? primContentHash(tri)
        : 0;
    pending.task = std::move(task);
    pending.quads = std::move(quads);
    ++ctx.warps;
    pendingWarps.push_back(std::move(pending));
    dispatchPending();
}

void
RasterUnit::dispatchPending()
{
    bool dispatched = false;
    while (!pendingWarps.empty()) {
        PendingWarp &head = pendingWarps.front();
        if (head.ctx != frag.get())
            break; // fragment-stage barrier (paper §III-A)

        // Prefer a screen-space-banded core assignment: quads from the
        // same 4-pixel row band go to the same core, so spatially
        // adjacent warps (which share texture lines) share an L1. Real
        // GPUs use static screen-space interleaving for the same
        // reason. Fall back to any free core to keep the load balanced.
        ShaderCore *target = nullptr;
        if (!head.quads.empty()) {
            const std::uint32_t band = head.quads.front().py / 4;
            ShaderCore *preferred =
                cores[band % cores.size()].get();
            if (preferred->hasFreeSlot())
                target = preferred;
        }
        if (!target) {
            for (std::uint32_t i = 0; i < cores.size(); ++i) {
                ShaderCore *candidate =
                    cores[(nextCore + i) % cores.size()].get();
                if (candidate->hasFreeSlot()) {
                    target = candidate;
                    nextCore = (nextCore + i + 1)
                        % static_cast<std::uint32_t>(cores.size());
                    break;
                }
            }
        }
        if (!target)
            break; // resumed on warp retire

        PendingWarp pending = std::move(pendingWarps.front());
        pendingWarps.pop_front();
        ++warpsLaunched;
        TileCtx *ctx = pending.ctx;
        const std::uint32_t seq = pending.seq;
        const std::uint32_t prim_id = pending.primId;
        const std::uint64_t prim_sig = pending.primSig;
        // The quad vector rides inside the retire callback's inline
        // capture (the whole capture is 56 of WarpRetireCallback's 64
        // bytes) — no shared_ptr block per warp.
        target->dispatch(
            std::move(pending.task),
            [this, ctx, seq, prim_id, prim_sig,
             quads = std::move(pending.quads)](
                const WarpRetireInfo &info) mutable {
                onWarpRetired(ctx, seq, prim_id, prim_sig,
                              std::move(quads), info);
            });
        dispatched = true;
    }
    if (dispatched)
        tryAdvance(); // raster front may have been stalled on backlog
    updatePhase();
}

void
RasterUnit::onWarpRetired(TileCtx *ctx, std::uint32_t seq,
                          std::uint32_t prim_id, std::uint64_t prim_sig,
                          std::vector<Quad> quads,
                          const WarpRetireInfo &info)
{
    libra_assert(frag && ctx == frag.get(),
                 "warp retired for a non-fragment-stage tile");
    texLatencySum += info.texLatencySum;
    texRequests += info.texRequests;
    fragmentsShaded += info.fragments;

    ctx->retired.emplace(seq,
                         TileCtx::RetiredWarp{info, std::move(quads),
                                              prim_id, prim_sig});
    commitReadyWarps(*ctx);
    dispatchPending();
    maybeCompleteTile();
}

void
RasterUnit::commitReadyWarps(TileCtx &ctx)
{
    // Blending commits strictly in warp-assembly (program) order, as a
    // real ROP reorder queue does — overlapping primitives must blend
    // in submission order for the output to be schedule-independent.
    auto it = ctx.retired.find(ctx.nextCommit);
    while (it != ctx.retired.end()) {
        const TileCtx::RetiredWarp &rw = it->second;
        const Tick ready = std::max(queue.now(), rw.info.shadedAt);
        const Tick blend_done =
            ctx.blender.acceptQuads(ready, rw.info.quadCount);
        ctx.lastBlendDone = std::max(ctx.lastBlendDone, blend_done);
        ctx.instructions += rw.info.instructions;
        ctx.fragments += rw.info.fragments;
        if (config.transactionElimination) {
            // Order-sensitive content hash over frame-independent
            // primitive signatures: identical primitive streams with
            // identical coverage produce identical tile contents.
            ctx.signature = hashCombine(ctx.signature, rw.primSig);
            for (const Quad &quad : rw.quads) {
                ctx.signature = hashCombine(
                    ctx.signature,
                    (static_cast<std::uint64_t>(quad.px) << 17)
                        ^ (static_cast<std::uint64_t>(quad.py) << 2)
                        ^ quad.mask);
            }
        }
        if (config.captureImage) {
            for (const Quad &quad : rw.quads)
                ctx.blender.blendQuad(quad, rw.primId);
        }
        ctx.retired.erase(it);
        ++ctx.nextCommit;
        it = ctx.retired.find(ctx.nextCommit);
    }
}

void
RasterUnit::maybeCompleteTile()
{
    TileCtx *ctx = frag.get();
    if (!ctx || ctx->completing || !ctx->endSeen
        || ctx->nextCommit != ctx->nextSeq) {
        return;
    }
    // All warps of the fragment-stage tile have committed.
    ctx->completing = true;
    const Tick done = std::max(queue.now(), ctx->lastBlendDone);
    queue.schedule(done, [this] { startFlush(); });
    updatePhase();
}

void
RasterUnit::startFlush()
{
    libra_assert(frag && frag->completing, "flush without a ready tile");

    // Snapshot everything the flush and the done-callback need, then
    // free the Fragment stage for the run-ahead tile (double-buffered
    // color buffer).
    auto ctx = std::move(frag);
    frag = std::move(ahead);

    const Tick now = queue.now();
    const IRect rect = ctx->rect;
    const std::uint32_t bytes = static_cast<std::uint32_t>(
        static_cast<double>(rect.width() * rect.height() * 4)
        * std::clamp(config.fbCompressionRatio, 0.05, 1.0));
    const TileId tile = ctx->tile;

    // Transaction elimination: when enabled and the content signature
    // matches the previous frame's, the frame buffer already holds
    // these bytes — skip the write entirely.
    const bool elide = config.transactionElimination && flushNeeded
        && !flushNeeded(tile, ctx->signature);

    // DMA engine occupancy: one engine per RU, serialized flushes.
    const Tick start = std::max(now, flushReadyAt);
    const std::uint32_t lines = (bytes + 63) / 64;
    flushReadyAt = start
        + lines / std::max(config.flushLinesPerCycle, 1u);

    flushBytes += elide ? 0 : bytes;
    ++tilesRendered;

    auto fin = std::make_shared<PendingFlush>();
    fin->color = config.captureImage
        ? std::make_shared<std::vector<std::uint64_t>>(
              ctx->blender.colorBuffer())
        : nullptr;
    fin->done.tile = tile;
    fin->done.instructions = ctx->instructions;
    fin->done.warps = ctx->warps;
    fin->done.fragments = ctx->fragments;
    fin->done.signature = ctx->signature;
    fin->done.flushElided = elide;
    fin->done.rect = rect;
    fin->bytes = bytes;
    fin->tile = tile;
    fin->fbAddr = addr_map::frameBufferBase
        + static_cast<Addr>(tile) * config.tileSize * config.tileSize * 4;

    if (elide) {
        ++flushesElided;
        queue.schedule(start, [this, fin] {
            TileDoneInfo info = fin->done;
            info.flushedAt = queue.now();
            info.colorBuffer = fin->color ? fin->color.get() : nullptr;
            LIBRA_TRACE_ASYNC_END(traceLane, traceTileName, fin->tile,
                                  info.flushedAt);
            if (onTileDone)
                onTileDone(info);
            updatePhase();
        });
    } else {
        queue.schedule(start, [this, fin] {
            fbSink.access(MemReq{
                fin->fbAddr, fin->bytes, true, TrafficClass::FrameBuffer,
                fin->tile, [this, fin](Tick when) {
                    TileDoneInfo info = fin->done;
                    info.flushedAt = when;
                    info.colorBuffer =
                        fin->color ? fin->color.get() : nullptr;
                    LIBRA_TRACE_ASYNC_END(traceLane, traceTileName,
                                          fin->tile, when);
                    if (onTileDone)
                        onTileDone(info);
                    updatePhase();
                }});
        });
    }

    // The Fragment stage is free: dispatch the run-ahead tile's warps
    // and wake the raster front (it may be stalled on a TileBegin).
    dispatchPending();
    maybeCompleteTile(); // the promoted tile may already be finished
    tryAdvance();
}

void
RasterUnit::saveState(SnapshotWriter &w) const
{
    libra_assert(idle() && !advanceScheduled && !inAdvance,
                 "raster-unit snapshot while not idle");
    w.putU32(nextCore);
    w.putU64(frontReadyAt);
    w.putU64(flushReadyAt);
    w.putU8(static_cast<std::uint8_t>(phaseTracker.current()));
    w.putU64(phaseTracker.lastTransition());
    w.putU64(cores.size());
    for (const auto &core : cores)
        core->saveState(w);
}

void
RasterUnit::loadState(SnapshotReader &r)
{
    nextCore = r.takeU32();
    frontReadyAt = r.takeU64();
    flushReadyAt = r.takeU64();
    const std::uint8_t phase = r.takeU8();
    const Tick phase_edge = r.takeU64();
    if (!r.check(phase < kNumRuPhases, "RU phase out of range")
        || !r.check(nextCore < cores.size() || cores.empty(),
                    "RU dispatch rotation out of range"))
        return;
    phaseTracker.restore(static_cast<RuPhase>(phase), phase_edge);
    if (!r.check(r.takeU64() == cores.size(),
                 "RU core count mismatches the configuration"))
        return;
    for (const auto &core : cores)
        core->loadState(r);
}

} // namespace libra
