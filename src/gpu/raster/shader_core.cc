#include "gpu/raster/shader_core.hh"

#include <algorithm>
#include <memory>

#include "check/snapshot.hh"
#include "common/log.hh"

namespace libra
{

/** Shared mutable state for one in-flight warp. */
struct ShaderCore::Flight
{
    WarpTask task;
    WarpRetireCallback onRetire;
    std::uint64_t outstanding = 0;
    Tick issueTick = 0;     //!< tick the texture phase issued
    Tick lastData = 0;
    std::uint64_t latencySum = 0;
    WarpRetireInfo info{};  //!< filled by finishWarp, read at retirement
};

ShaderCore::ShaderCore(EventQueue &eq, std::uint32_t warp_slots,
                       Cache &texture_l1, const std::string &name)
    : queue(eq), warpSlots(warp_slots), texL1(texture_l1)
{
    libra_assert(warp_slots > 0, name, ": core needs warp slots");
}

Tick
ShaderCore::reserveIssue(Tick earliest, Tick cycles)
{
    const Tick start = std::max(earliest, issueReadyAt);
    issueReadyAt = start + cycles;
    issueBusy += cycles;
    return issueReadyAt;
}

void
ShaderCore::dispatch(WarpTask task, WarpRetireCallback on_retire)
{
    libra_assert(hasFreeSlot(), "dispatch to a full core");
    ++residentWarps;
    ++warpsExecuted;

    const Tick now = queue.now();

    // Main ALU block: the warp single-issues one instruction per cycle,
    // arbitrating the issue port with the other resident warps.
    const Tick alu_done = reserveIssue(now, std::max<Tick>(1, task.aluOps));

    auto flight = std::make_shared<Flight>();
    flight->task = std::move(task);
    flight->onRetire = std::move(on_retire);

    if (flight->task.texLines.empty()) {
        // Pure-ALU warp: no texture phase.
        queue.schedule(alu_done, [this, flight, alu_done] {
            finishWarp(flight, alu_done);
        });
        return;
    }

    // Texture phase: issue every sample when the ALU block completes,
    // then block until the last one returns.
    flight->outstanding = flight->task.texLines.size();
    queue.schedule(alu_done,
                   [this, flight] { issueTexPhase(flight); });
}

void
ShaderCore::issueTexPhase(const std::shared_ptr<Flight> &flight)
{
    flight->issueTick = queue.now();
    for (const Addr line : flight->task.texLines) {
        texL1.access(MemReq{
            line, 64, false, TrafficClass::Texture, flight->task.tile,
            [this, flight](Tick when) { onTexData(flight, when); }});
    }
    // The warp just blocked on its texture data; let the RU's phase
    // attribution notice (it may have been the last one issuing).
    if (onStateChange)
        onStateChange();
}

void
ShaderCore::onTexData(const std::shared_ptr<Flight> &flight, Tick when)
{
    flight->latencySum += when - flight->issueTick;
    flight->lastData = std::max(flight->lastData, when);
    if (--flight->outstanding == 0)
        finishWarp(flight, flight->lastData);
}

void
ShaderCore::finishWarp(const std::shared_ptr<Flight> &flight,
                       Tick data_ready)
{
    // Tail block (color computation/export) re-arbitrates issue.
    const Tick done = reserveIssue(data_ready, tailOps);
    texRequests += flight->task.texLines.size();
    texLatencySum += flight->latencySum;

    WarpRetireInfo &info = flight->info;
    info.tile = flight->task.tile;
    info.shadedAt = done;
    info.instructions = flight->task.instructions;
    info.texRequests = flight->task.texLines.size();
    info.texLatencySum = flight->latencySum;
    info.quadCount = flight->task.quadCount;
    info.fragments = flight->task.fragments;
    info.blend = flight->task.blend;

    queue.schedule(done, [this, flight] { retireWarp(flight); });
    // Data returned and the tail block re-occupied the issue port:
    // the core transitioned back from waiting to shading.
    if (onStateChange)
        onStateChange();
}

void
ShaderCore::retireWarp(const std::shared_ptr<Flight> &flight)
{
    libra_assert(residentWarps > 0, "slot underflow");
    --residentWarps;
    flight->onRetire(flight->info);
}

void
ShaderCore::saveState(SnapshotWriter &w) const
{
    libra_assert(residentWarps == 0,
                 "shader-core snapshot with resident warps");
    w.putU64(issueReadyAt);
    w.putU64(warpsExecuted.value());
    w.putU64(issueBusy.value());
    w.putU64(texRequests.value());
    w.putU64(texLatencySum.value());
}

void
ShaderCore::loadState(SnapshotReader &r)
{
    issueReadyAt = r.takeU64();
    warpsExecuted.set(r.takeU64());
    issueBusy.set(r.takeU64());
    texRequests.set(r.takeU64());
    texLatencySum.set(r.takeU64());
}

} // namespace libra
