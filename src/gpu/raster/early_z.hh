/**
 * @file
 * Early-Z stage: per-tile on-chip depth buffer (paper §II-A).
 *
 * Kills fragments known to be occluded before they reach the expensive
 * Fragment stage. The Z-Buffer is tile-sized and on-chip, so depth
 * traffic never reaches DRAM (§II-C). Opaque fragments write depth;
 * translucent (blended) fragments test but do not write, matching the
 * standard depth-test configuration of painter's-ordered content.
 */

#ifndef LIBRA_GPU_RASTER_EARLY_Z_HH
#define LIBRA_GPU_RASTER_EARLY_Z_HH

#include <cstdint>
#include <vector>

#include "common/geom.hh"
#include "common/stats.hh"
#include "gpu/raster/rasterizer.hh"

namespace libra
{

/** One tile-sized depth buffer with LESS depth test. */
class EarlyZ
{
  public:
    explicit EarlyZ(std::uint32_t tile_size);

    /** Clear to the far plane for a new tile at @p rect. */
    void beginTile(const IRect &rect);

    /**
     * Depth-test a quad in place: clears mask bits of occluded
     * fragments and, when @p write_depth, updates the buffer for the
     * survivors. @return the surviving coverage mask.
     */
    std::uint8_t testQuad(Quad &quad, bool write_depth);

    Counter quadsTested;
    Counter quadsKilled;     //!< fully occluded quads
    Counter fragmentsKilled;

  private:
    std::uint32_t tileSize;
    IRect rect;
    std::vector<float> depth; //!< tileSize^2, tile-local row-major
};

} // namespace libra

#endif // LIBRA_GPU_RASTER_EARLY_Z_HH
