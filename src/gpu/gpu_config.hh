/**
 * @file
 * Full configuration of the modeled TBR GPU.
 *
 * Defaults follow Table I of the paper: 800 MHz, FHD screen, 32x32-pixel
 * tiles, the listed cache geometry, LPDDR4 main memory, and either the
 * baseline organization (one Raster Unit, eight shader cores) or the
 * LIBRA organization (two Raster Units of four cores each).
 */

#ifndef LIBRA_GPU_GPU_CONFIG_HH
#define LIBRA_GPU_GPU_CONFIG_HH

#include <cstdint>
#include <memory>
#include <string>

#include "cache/cache.hh"
#include "common/status.hh"
#include "core/scheduler_config.hh"
#include "dram/dram.hh"
#include "sim/watchdog.hh"

namespace libra
{

class FaultInjector;

/** Complete GPU configuration. */
struct GpuConfig
{
    // --- Global (Table I) ---------------------------------------------
    std::uint32_t screenWidth = 1920;
    std::uint32_t screenHeight = 1080;
    std::uint32_t tileSize = 32; //!< pixels per tile side

    // --- Parallel tile rendering --------------------------------------
    std::uint32_t rasterUnits = 1;
    std::uint32_t coresPerRu = 8;

    // --- Shader cores ---------------------------------------------------
    std::uint32_t warpsPerCore = 12;   //!< resident warp slots
    std::uint32_t warpQuads = 8;       //!< 8 quads = 32 threads per warp
    std::uint32_t pendingWarpsPerCore = 4; //!< assembled, awaiting a slot

    // --- Fixed-function throughput (per Raster Unit, per cycle) --------
    std::uint32_t rasterQuadsPerCycle = 4;
    std::uint32_t earlyZQuadsPerCycle = 4;
    std::uint32_t blendQuadsPerCycle = 4;
    std::uint32_t flushLinesPerCycle = 1; //!< color-buffer DMA

    // --- Geometry pipeline ---------------------------------------------
    std::uint32_t vertexProcessors = 2;
    std::uint32_t binTilesPerCycle = 2; //!< list entries written per cycle

    // --- Tiling engine --------------------------------------------------
    std::uint32_t fifoDepth = 64;   //!< primitives per RU input FIFO
    std::uint32_t listEntryBytes = 16;
    std::uint32_t primRecordBytes = 64;

    // --- Memory hierarchy (Table I) -------------------------------------
    CacheConfig vertexCache{"vertex_cache", 4 * 1024, 2, 64, 1, 8, 1, true};
    CacheConfig tileCache{"tile_cache", 32 * 1024, 4, 64, 2, 16, 2, true};
    CacheConfig textureCache{"texture_cache", 32 * 1024, 4, 64, 2, 32, 2,
                             true};
    CacheConfig l2{"l2", 2 * 1024 * 1024, 8, 64, 18, 64, 4, true};
    DramConfig dram;
    bool idealMemory = false; //!< all accesses complete in L1 (Fig. 6a)

    // --- Scheduling ------------------------------------------------------
    SchedulerConfig sched;

    // --- TBR extensions (off by default: the paper's baseline) ----------
    bool transactionElimination = false; //!< skip unchanged-tile flushes
    double fbCompressionRatio = 1.0;     //!< AFBC-style flush compression

    /**
     * Rendering Elimination (Anglada et al., policy "re"): hash each
     * tile's binned-primitive content after binning and skip the whole
     * raster pipeline — fetch, shading, flush — for tiles whose input
     * signature matches the previous frame (the framebuffer already
     * holds the right pixels). Composes with any scheduling policy;
     * counters land under "re.*". Contrast transactionElimination,
     * which renders everything and elides only the flush based on the
     * *output* signature.
     */
    bool renderingElimination = false;

    // --- Instrumentation -------------------------------------------------
    bool captureImage = false; //!< keep a per-pixel hash "image"
    bool traceEvents = false;  //!< record a chrome-trace event timeline

    /** Ticks per DRAM-bandwidth timeline bucket (Fig. 7 sampling). */
    std::uint32_t dramTimelineInterval = 5000;

    // --- Parallel simulation ---------------------------------------------
    /**
     * Worker threads of the sharded discrete-event engine (DESIGN.md
     * §8): 0 (the default) runs the historical sequential engine — one
     * EventQueue, one thread; N >= 1 partitions the machine into one
     * event-queue shard per Raster Unit plus a shared L2/DRAM/scheduler
     * shard, and executes RU windows on N threads. The sharded engine
     * is its own timing reference: any N >= 1 produces byte-identical
     * counters, reports and traces (simThreads == 1 simply runs the
     * same windowed algorithm inline), so this knob only distinguishes
     * "sequential" from "sharded" in configHash().
     */
    std::uint32_t simThreads = 0;

    /**
     * Conservative lookahead of the sharded engine, in ticks: RU shards
     * may run this far ahead of the shared domain because a cross-shard
     * response can never arrive sooner — the minimum L2 round trip is
     * one L2 hit latency, and the engine charges exactly that transit
     * on every shared→RU completion.
     */
    Tick
    shardLookahead() const
    {
        return l2.hitLatency > 0 ? l2.hitLatency : 1;
    }

    // --- Robustness ------------------------------------------------------
    /** Per-frame watchdog limits (both triggers off by default). */
    WatchdogConfig watchdog;

    /**
     * Run the InvariantChecker (src/check) at every frame boundary:
     * cache-counter conservation, per-tile DRAM attribution, exactly-
     * once tile scheduling, RU phase partition and the energy-component
     * sum. A violated law surfaces as an InvariantViolation Status from
     * tryRenderFrame — a recoverable error, never an abort — so CI and
     * the config fuzzer can turn model-accounting bugs into red tests.
     * Off by default: release runs pay no checking cost.
     */
    bool checkInvariants = false;

    /**
     * Armed fault injector (src/check/fault_injector), set per job
     * attempt by SweepRunner when a FaultPlan is in force; null in
     * normal runs. Like the watchdog's CancelToken this is a runtime
     * attachment, not a property of the simulated machine, so it is
     * excluded from configHash(). Ignored entirely when the hooks are
     * compiled out (LIBRA_FAULTS=OFF).
     */
    std::shared_ptr<FaultInjector> faults;

    /**
     * Stable 64-bit hash of every *model* field — everything that can
     * change a simulation's counters, and nothing that can't (runtime
     * attachments: watchdog limits, cancel token, fault injector,
     * instrumentation toggles are all excluded). Used as the journal /
     * result-cache key (ROADMAP item 2) and to attribute farm-log
     * failures to a config; identical configs hash identically across
     * processes and runs.
     */
    std::uint64_t configHash() const;

    /**
     * configHash() with the adaptive-controller decision thresholds
     * (sched.resizeThreshold, sched.orderSwitchThreshold) pinned to
     * fixed values. Two configs that differ only in those thresholds
     * render byte-identical warm-up frames — the controller first
     * consults them when frame 2's feedback is compared against frame
     * 1's — so a frame-boundary snapshot taken within the warm prefix
     * is shared across such a sweep (see src/check/snapshot.hh).
     */
    std::uint64_t warmPrefixHash() const;

    /**
     * Cross-field sanity validation. Checks ranges of every knob, the
     * tile size against the screen, the Raster-Unit/core organization
     * against the warp configuration, and the cache/DRAM geometry.
     * Called by the runner before a simulation is built; an invalid
     * configuration surfaces as a recoverable InvalidArgument instead
     * of undefined simulator behaviour.
     */
    Status validate() const;

    std::uint32_t
    tilesX() const
    {
        return (screenWidth + tileSize - 1) / tileSize;
    }

    std::uint32_t
    tilesY() const
    {
        return (screenHeight + tileSize - 1) / tileSize;
    }

    std::uint32_t tileCount() const { return tilesX() * tilesY(); }

    /** Baseline of Table I: one RU with all the cores. */
    static GpuConfig
    baseline(std::uint32_t cores = 8)
    {
        GpuConfig cfg;
        cfg.rasterUnits = 1;
        cfg.coresPerRu = cores;
        cfg.sched.policy = SchedulerPolicy::ZOrder;
        return cfg;
    }

    /** PTR: the cores split across RUs, interleaved Z-order dispatch. */
    static GpuConfig
    ptr(std::uint32_t raster_units = 2, std::uint32_t cores_per_ru = 4)
    {
        GpuConfig cfg;
        cfg.rasterUnits = raster_units;
        cfg.coresPerRu = cores_per_ru;
        cfg.sched.policy = SchedulerPolicy::ZOrder;
        return cfg;
    }

    /** Full LIBRA: PTR plus the adaptive temperature-aware scheduler. */
    static GpuConfig
    libra(std::uint32_t raster_units = 2, std::uint32_t cores_per_ru = 4)
    {
        GpuConfig cfg;
        cfg.rasterUnits = raster_units;
        cfg.coresPerRu = cores_per_ru;
        cfg.sched.policy = SchedulerPolicy::Libra;
        return cfg;
    }

    /** PTR with supertile grouping only (Fig. 16 static points). */
    static GpuConfig
    staticSupertile(std::uint32_t supertile_size,
                    std::uint32_t raster_units = 2,
                    std::uint32_t cores_per_ru = 4)
    {
        GpuConfig cfg;
        cfg.rasterUnits = raster_units;
        cfg.coresPerRu = cores_per_ru;
        cfg.sched.policy = SchedulerPolicy::StaticSupertile;
        cfg.sched.staticSupertileSize = supertile_size;
        return cfg;
    }
};

} // namespace libra

#endif // LIBRA_GPU_GPU_CONFIG_HH
