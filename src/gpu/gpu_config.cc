#include "gpu/gpu_config.hh"

#include <bit>

#include "common/rng.hh"

namespace libra
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Hard ceilings keeping a misconfigured run from exhausting memory. */
constexpr std::uint32_t maxScreenDim = 16384;
constexpr std::uint32_t maxTileSize = 1024;
constexpr std::uint32_t maxRasterUnits = 64;
constexpr std::uint32_t maxCoresPerRu = 64;
constexpr std::uint32_t maxWarpsPerCore = 256;
constexpr std::uint32_t maxSimThreads = 64;

Status
validateCache(const CacheConfig &cache)
{
    if (cache.sizeBytes == 0 || cache.ways == 0 || cache.lineBytes == 0) {
        return Status::error(ErrorCode::InvalidArgument, cache.name,
                             ": size, ways and line bytes must be > 0");
    }
    if (!isPow2(cache.lineBytes) || cache.lineBytes < 8) {
        return Status::error(ErrorCode::InvalidArgument, cache.name,
                             ": line size ", cache.lineBytes,
                             " must be a power of two >= 8");
    }
    const std::uint64_t way_bytes =
        std::uint64_t(cache.ways) * cache.lineBytes;
    if (cache.sizeBytes % way_bytes != 0) {
        return Status::error(ErrorCode::InvalidArgument, cache.name,
                             ": size ", cache.sizeBytes,
                             " is not a multiple of ways x line (",
                             way_bytes, ")");
    }
    if (!isPow2(cache.sizeBytes / way_bytes)) {
        return Status::error(ErrorCode::InvalidArgument, cache.name,
                             ": set count ", cache.sizeBytes / way_bytes,
                             " must be a power of two");
    }
    if (cache.mshrs == 0 || cache.portsPerCycle == 0) {
        return Status::error(ErrorCode::InvalidArgument, cache.name,
                             ": MSHRs and ports must be > 0");
    }
    return Status::ok();
}

Status
validateDram(const DramConfig &dram)
{
    if (dram.channels == 0 || dram.banksPerChannel == 0) {
        return Status::error(ErrorCode::InvalidArgument,
                             "dram: channels and banks must be > 0");
    }
    if (!isPow2(dram.lineBytes) || dram.lineBytes < 8) {
        return Status::error(ErrorCode::InvalidArgument,
                             "dram: line size ", dram.lineBytes,
                             " must be a power of two >= 8");
    }
    if (dram.rowBytes < dram.lineBytes
        || dram.rowBytes % dram.lineBytes != 0) {
        return Status::error(ErrorCode::InvalidArgument,
                             "dram: row size ", dram.rowBytes,
                             " must be a multiple of the line size ",
                             dram.lineBytes);
    }
    if (dram.interleaveLines == 0 || dram.schedulerWindow == 0) {
        return Status::error(
            ErrorCode::InvalidArgument,
            "dram: interleave and scheduler window must be > 0");
    }
    if (dram.writeLowWatermark > dram.writeHighWatermark) {
        return Status::error(ErrorCode::InvalidArgument,
                             "dram: write low watermark ",
                             dram.writeLowWatermark,
                             " exceeds the high watermark ",
                             dram.writeHighWatermark);
    }
    return Status::ok();
}

/** Incremental FNV-style mixer over heterogeneous config fields. */
class ConfigHasher
{
  public:
    void
    mix(std::uint64_t v)
    {
        state = hashCombine(state, v);
    }

    void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
    void mix(bool v) { mix(std::uint64_t(v ? 1 : 0)); }

    void
    mix(const CacheConfig &cache)
    {
        // The name is identity, not geometry; two caches configured
        // identically must hash identically.
        mix(std::uint64_t(cache.sizeBytes));
        mix(std::uint64_t(cache.ways));
        mix(std::uint64_t(cache.lineBytes));
        mix(std::uint64_t(cache.hitLatency));
        mix(std::uint64_t(cache.mshrs));
        mix(std::uint64_t(cache.portsPerCycle));
        mix(cache.writeAllocate);
        mix(cache.alwaysHit);
    }

    void
    mix(const DramConfig &dram)
    {
        mix(std::uint64_t(dram.channels));
        mix(std::uint64_t(dram.banksPerChannel));
        mix(std::uint64_t(dram.rowBytes));
        mix(std::uint64_t(dram.lineBytes));
        mix(std::uint64_t(dram.interleaveLines));
        mix(std::uint64_t(dram.ctrlLatency));
        mix(std::uint64_t(dram.tCas));
        mix(std::uint64_t(dram.tRcd));
        mix(std::uint64_t(dram.tRp));
        mix(std::uint64_t(dram.tBurst));
        mix(std::uint64_t(dram.tWr));
        mix(std::uint64_t(dram.schedulerWindow));
        mix(std::uint64_t(dram.starvationLimit));
        mix(std::uint64_t(dram.writeHighWatermark));
        mix(std::uint64_t(dram.writeLowWatermark));
    }

    std::uint64_t value() const { return state; }

  private:
    std::uint64_t state = 0x11b2a'c0f1ull; // arbitrary fixed basis
};

} // namespace

std::uint64_t
GpuConfig::configHash() const
{
    ConfigHasher h;
    h.mix(std::uint64_t(screenWidth));
    h.mix(std::uint64_t(screenHeight));
    h.mix(std::uint64_t(tileSize));
    h.mix(std::uint64_t(rasterUnits));
    h.mix(std::uint64_t(coresPerRu));
    h.mix(std::uint64_t(warpsPerCore));
    h.mix(std::uint64_t(warpQuads));
    h.mix(std::uint64_t(pendingWarpsPerCore));
    h.mix(std::uint64_t(rasterQuadsPerCycle));
    h.mix(std::uint64_t(earlyZQuadsPerCycle));
    h.mix(std::uint64_t(blendQuadsPerCycle));
    h.mix(std::uint64_t(flushLinesPerCycle));
    h.mix(std::uint64_t(vertexProcessors));
    h.mix(std::uint64_t(binTilesPerCycle));
    h.mix(std::uint64_t(fifoDepth));
    h.mix(std::uint64_t(listEntryBytes));
    h.mix(std::uint64_t(primRecordBytes));
    h.mix(vertexCache);
    h.mix(tileCache);
    h.mix(textureCache);
    h.mix(l2);
    h.mix(dram);
    h.mix(idealMemory);
    h.mix(std::uint64_t(sched.policy));
    h.mix(std::uint64_t(sched.staticSupertileSize));
    h.mix(std::uint64_t(sched.initialSupertileSize));
    h.mix(sched.hitRatioThreshold);
    h.mix(sched.orderSwitchThreshold);
    h.mix(sched.resizeThreshold);
    h.mix(std::uint64_t(sched.minSupertileSize));
    h.mix(std::uint64_t(sched.maxSupertileSize));
    h.mix(std::uint64_t(sched.hotRasterUnits));
    h.mix(transactionElimination);
    h.mix(fbCompressionRatio);
    h.mix(renderingElimination);
    // The sharded engine is a different timing reference from the
    // sequential one (cross-shard completions pay the lookahead
    // transit), but every sharded thread count is byte-identical — so
    // only the engine choice is model identity, never the thread count.
    h.mix(simThreads != 0);
    // captureImage changes the *payload* of a result (per-pixel hash
    // image present or not), so results keyed by this hash must include
    // it even though it never changes a counter. The remaining runtime
    // attachments (watchdog, cancel, faults, traceEvents,
    // checkInvariants, dramTimelineInterval) never change what a
    // successful run returns and are deliberately excluded.
    h.mix(captureImage);
    return h.value();
}

std::uint64_t
GpuConfig::warmPrefixHash() const
{
    GpuConfig pinned = *this;
    pinned.faults.reset(); // never hashed, but keep the copy cheap
    pinned.sched.resizeThreshold = 0.0;
    pinned.sched.orderSwitchThreshold = 0.0;
    return pinned.configHash();
}

Status
GpuConfig::validate() const
{
    // --- Screen and tile grid -----------------------------------------
    if (screenWidth == 0 || screenHeight == 0 || screenWidth > maxScreenDim
        || screenHeight > maxScreenDim) {
        return Status::error(ErrorCode::InvalidArgument, "screen ",
                             screenWidth, "x", screenHeight,
                             " out of range [1, ", maxScreenDim, "]^2");
    }
    if (tileSize == 0 || tileSize > maxTileSize) {
        return Status::error(ErrorCode::InvalidArgument, "tile size ",
                             tileSize, " out of range [1, ", maxTileSize,
                             "]");
    }
    if (tileSize > screenWidth && tileSize > screenHeight) {
        return Status::error(ErrorCode::InvalidArgument, "tile size ",
                             tileSize, " exceeds the whole ", screenWidth,
                             "x", screenHeight, " screen");
    }

    // --- Raster Unit / core organization vs warp configuration --------
    if (rasterUnits == 0 || rasterUnits > maxRasterUnits) {
        return Status::error(ErrorCode::InvalidArgument, "raster units ",
                             rasterUnits, " out of range [1, ",
                             maxRasterUnits, "]");
    }
    if (coresPerRu == 0 || coresPerRu > maxCoresPerRu) {
        return Status::error(ErrorCode::InvalidArgument, "cores per RU ",
                             coresPerRu, " out of range [1, ",
                             maxCoresPerRu, "]");
    }
    if (warpsPerCore == 0 || warpsPerCore > maxWarpsPerCore) {
        return Status::error(ErrorCode::InvalidArgument, "warps per core ",
                             warpsPerCore, " out of range [1, ",
                             maxWarpsPerCore, "]");
    }
    if (warpQuads == 0 || pendingWarpsPerCore == 0) {
        return Status::error(
            ErrorCode::InvalidArgument,
            "warp quads and pending warps per core must be > 0");
    }
    // Each RU must be able to hold a whole tile's worth of in-flight
    // warps making forward progress: at least one resident slot.
    const std::uint64_t tile_quads =
        std::uint64_t(tileSize) * tileSize / 4;
    if (warpQuads > std::max<std::uint64_t>(tile_quads, 1)) {
        return Status::error(ErrorCode::InvalidArgument, "warp of ",
                             warpQuads, " quads exceeds a whole ",
                             tileSize, "x", tileSize, " tile (",
                             tile_quads, " quads)");
    }

    // --- Fixed-function throughput ------------------------------------
    if (rasterQuadsPerCycle == 0 || earlyZQuadsPerCycle == 0
        || blendQuadsPerCycle == 0 || flushLinesPerCycle == 0) {
        return Status::error(
            ErrorCode::InvalidArgument,
            "per-cycle throughputs must all be > 0");
    }
    if (vertexProcessors == 0 || binTilesPerCycle == 0) {
        return Status::error(
            ErrorCode::InvalidArgument,
            "geometry pipeline widths must be > 0");
    }
    if (fifoDepth < 2) {
        return Status::error(ErrorCode::InvalidArgument, "FIFO depth ",
                             fifoDepth,
                             " too small: needs >= 2 (TileBegin+TileEnd)");
    }
    if (listEntryBytes == 0 || primRecordBytes == 0) {
        return Status::error(
            ErrorCode::InvalidArgument,
            "parameter-buffer record sizes must be > 0");
    }

    // --- Memory hierarchy ---------------------------------------------
    for (const CacheConfig *cache :
         {&vertexCache, &tileCache, &textureCache, &l2}) {
        if (Status st = validateCache(*cache); !st.isOk())
            return st;
    }
    if (Status st = validateDram(dram); !st.isOk())
        return st;

    // --- Scheduling ------------------------------------------------------
    if (sched.hotRasterUnits == 0 || sched.hotRasterUnits >= rasterUnits) {
        // One RU: the hot/cold split is meaningless but harmless; only
        // reject nonsensical values when the split is actually used.
        if (rasterUnits > 1) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "hot raster units ",
                                 sched.hotRasterUnits,
                                 " must be in [1, ", rasterUnits - 1,
                                 "] with ", rasterUnits, " RUs");
        }
    }
    if (sched.minSupertileSize == 0
        || sched.maxSupertileSize < sched.minSupertileSize) {
        return Status::error(ErrorCode::InvalidArgument,
                             "supertile size range [",
                             sched.minSupertileSize, ", ",
                             sched.maxSupertileSize, "] is empty");
    }
    if (sched.staticSupertileSize == 0
        || sched.initialSupertileSize == 0) {
        return Status::error(ErrorCode::InvalidArgument,
                             "supertile sizes must be > 0");
    }

    // --- Extensions ------------------------------------------------------
    if (!(fbCompressionRatio > 0.0) || fbCompressionRatio > 1.0) {
        return Status::error(ErrorCode::InvalidArgument,
                             "framebuffer compression ratio ",
                             fbCompressionRatio, " must be in (0, 1]");
    }

    // --- Parallel simulation ---------------------------------------------
    if (simThreads > maxSimThreads) {
        return Status::error(ErrorCode::InvalidArgument, "sim threads ",
                             simThreads, " out of range [0, ",
                             maxSimThreads, "]");
    }

    // --- Instrumentation -------------------------------------------------
    if (dramTimelineInterval == 0) {
        return Status::error(ErrorCode::InvalidArgument,
                             "dramTimelineInterval must be > 0");
    }
    return Status::ok();
}

} // namespace libra
