#include "gpu/tiling/tile_fetcher.hh"

#include <algorithm>
#include <memory>

#include "common/log.hh"

namespace libra
{

TileFetcher::TileFetcher(EventQueue &eq, Cache &tile_cache,
                         std::vector<RasterSink *> raster_units,
                         TileScheduler &scheduler)
    : queue(eq), tileCache(tile_cache), rus(std::move(raster_units)),
      sched(scheduler)
{
    libra_assert(!rus.empty(), "fetcher needs Raster Units");
    streams.resize(rus.size());
    for (std::size_t ru = 0; ru < rus.size(); ++ru) {
        rus[ru]->onSpaceFreed = [this, ru] {
            pump(static_cast<std::uint32_t>(ru));
        };
    }
}

void
TileFetcher::beginFrame(const BinnedFrame &binned)
{
    frame = &binned;
    for (auto &stream : streams)
        stream = Stream{};
    for (std::uint32_t ru = 0; ru < rus.size(); ++ru)
        pump(ru);
}

bool
TileFetcher::drained() const
{
    return std::all_of(streams.begin(), streams.end(),
                       [](const Stream &s) { return s.done; });
}

void
TileFetcher::pump(std::uint32_t ru)
{
    Stream &stream = streams[ru];
    if (!frame || stream.done || stream.fetching || stream.pumping)
        return;

    // Pushing into the RU FIFO can synchronously re-enter pump() via
    // onSpaceFreed; the guard makes those calls no-ops.
    stream.pumping = true;
    struct Unguard
    {
        bool &flag;
        ~Unguard() { flag = false; }
    } unguard{stream.pumping};

    while (true) {
        // Push any fetched primitives first.
        drainReady(ru);
        if (!stream.ready.empty())
            return; // FIFO full; resumed by onSpaceFreed

        if (stream.endPending) {
            if (!rus[ru]->canPush())
                return;
            rus[ru]->push({RasterWork::Kind::TileEnd, stream.tile, 0});
            stream.endPending = false;
            stream.active = false;
        }

        if (!stream.active) {
            const auto tile = sched.nextTile(ru);
            if (!tile) {
                stream.done = true;
                return;
            }
            stream.tile = *tile;
            stream.idx = 0;
            stream.active = true;
            stream.beginPending = true;
            ++tilesFetched;
        }

        if (stream.beginPending) {
            if (!rus[ru]->canPush())
                return;
            rus[ru]->push({RasterWork::Kind::TileBegin, stream.tile, 0});
            stream.beginPending = false;
        }

        const auto &list = frame->tileLists[stream.tile];
        if (stream.idx >= list.size()) {
            stream.endPending = true;
            continue;
        }

        // Fetch the next batch of list entries (one Parameter-Buffer
        // line) plus the referenced primitive records.
        issueBatch(ru);
        return; // resumed when the batch completes
    }
}

void
TileFetcher::drainReady(std::uint32_t ru)
{
    Stream &stream = streams[ru];
    while (!stream.ready.empty() && rus[ru]->canPush()) {
        const std::uint32_t prim = stream.ready.front();
        stream.ready.pop_front();
        rus[ru]->push({RasterWork::Kind::Prim, stream.tile, prim});
        ++primsFetched;
    }
}

void
TileFetcher::issueBatch(std::uint32_t ru)
{
    Stream &stream = streams[ru];
    const auto &list = frame->tileLists[stream.tile];
    const auto &layout = frame->layout;

    const std::uint32_t entries_per_line =
        std::max(1u, 64u / layout.listEntryBytes);
    const std::uint32_t batch = std::min<std::uint32_t>(
        entries_per_line - (stream.idx % entries_per_line),
        static_cast<std::uint32_t>(list.size()) - stream.idx);

    stream.fetching = true;

    struct Batch
    {
        std::uint32_t ru = 0;
        std::uint32_t outstanding = 0;
        std::vector<std::uint32_t> prims;
    };
    auto state = std::make_shared<Batch>();
    state->ru = ru;
    state->prims.assign(list.begin() + stream.idx,
                        list.begin() + stream.idx + batch);
    state->outstanding = 1 + batch; // list line + one record per prim
    stream.idx += batch;

    auto on_part = [this, state](Tick) {
        if (--state->outstanding != 0)
            return;
        Stream &s = streams[state->ru];
        s.fetching = false;
        for (const std::uint32_t prim : state->prims)
            s.ready.push_back(prim);
        pump(state->ru);
    };

    ++listLineReads;
    tileCache.access(MemReq{
        layout.listEntryAddr(stream.tile,
                             stream.idx - batch),
        layout.listEntryBytes * batch, false,
        TrafficClass::ParameterBuffer, stream.tile, on_part});
    for (const std::uint32_t prim : state->prims) {
        ++recordReads;
        tileCache.access(MemReq{layout.primRecordAddr(prim),
                                layout.primRecordBytes, false,
                                TrafficClass::ParameterBuffer,
                                stream.tile, on_part});
    }
}

} // namespace libra
