#include "gpu/tiling/tile_grid.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/morton.hh"

namespace libra
{

TileGrid::TileGrid(std::uint32_t screen_w, std::uint32_t screen_h,
                   std::uint32_t tile_size)
    : screenW(screen_w), screenH(screen_h), tilePx(tile_size)
{
    libra_assert(tile_size > 0, "zero tile size");
    nx = (screen_w + tile_size - 1) / tile_size;
    ny = (screen_h + tile_size - 1) / tile_size;
    libra_assert(nx > 0 && ny > 0, "empty tile grid");

    // Build the Z-order traversal once: enumerate Morton codes over the
    // enclosing power-of-two square and keep the in-grid ones.
    std::uint32_t side = 1;
    while (side < std::max(nx, ny))
        side <<= 1;
    zOrderTiles.reserve(static_cast<std::size_t>(nx) * ny);
    for (std::uint32_t code = 0; code < side * side; ++code) {
        const std::uint32_t tx = mortonDecodeX(code);
        const std::uint32_t ty = mortonDecodeY(code);
        if (tx < nx && ty < ny)
            zOrderTiles.push_back(tileAt(tx, ty));
    }
    libra_assert(zOrderTiles.size()
                     == static_cast<std::size_t>(nx) * ny,
                 "Z-order enumeration missed tiles");
}

IRect
TileGrid::tileRect(TileId id) const
{
    const std::uint32_t tx = tileX(id);
    const std::uint32_t ty = tileY(id);
    IRect rect;
    rect.x0 = static_cast<std::int32_t>(tx * tilePx);
    rect.y0 = static_cast<std::int32_t>(ty * tilePx);
    rect.x1 = static_cast<std::int32_t>(
        std::min((tx + 1) * tilePx, screenW));
    rect.y1 = static_cast<std::int32_t>(
        std::min((ty + 1) * tilePx, screenH));
    return rect;
}

std::vector<TileId>
TileGrid::scanlineOrder() const
{
    std::vector<TileId> order(tileCount());
    for (TileId id = 0; id < tileCount(); ++id)
        order[id] = id;
    return order;
}

std::uint32_t
TileGrid::superTileCount(std::uint32_t st) const
{
    libra_assert(st > 0, "zero supertile size");
    return superTilesX(st) * superTilesY(st);
}

SuperTileId
TileGrid::superTileOf(TileId tile, std::uint32_t st) const
{
    const std::uint32_t sx = tileX(tile) / st;
    const std::uint32_t sy = tileY(tile) / st;
    return sy * superTilesX(st) + sx;
}

std::vector<TileId>
TileGrid::tilesInSuperTile(SuperTileId s, std::uint32_t st) const
{
    const std::uint32_t sx = s % superTilesX(st);
    const std::uint32_t sy = s / superTilesX(st);
    const std::uint32_t x0 = sx * st;
    const std::uint32_t y0 = sy * st;

    // Tiles within a supertile are always traversed in Z-order (§III-D).
    std::vector<TileId> tiles;
    tiles.reserve(static_cast<std::size_t>(st) * st);
    for (std::uint32_t code = 0; code < st * st; ++code) {
        const std::uint32_t tx = x0 + mortonDecodeX(code);
        const std::uint32_t ty = y0 + mortonDecodeY(code);
        if (tx < nx && ty < ny)
            tiles.push_back(tileAt(tx, ty));
    }
    return tiles;
}

std::vector<SuperTileId>
TileGrid::superTileZOrder(std::uint32_t st) const
{
    const std::uint32_t snx = superTilesX(st);
    const std::uint32_t sny = superTilesY(st);
    std::uint32_t side = 1;
    while (side < std::max(snx, sny))
        side <<= 1;
    std::vector<SuperTileId> order;
    order.reserve(static_cast<std::size_t>(snx) * sny);
    for (std::uint32_t code = 0; code < side * side; ++code) {
        const std::uint32_t sx = mortonDecodeX(code);
        const std::uint32_t sy = mortonDecodeY(code);
        if (sx < snx && sy < sny)
            order.push_back(sy * snx + sx);
    }
    return order;
}

} // namespace libra
