/**
 * @file
 * The frame's tile grid: tile/supertile indexing and traversal orders.
 *
 * A FHD frame at 32x32-pixel tiles is a 60x34 grid (2040 tiles); LIBRA
 * groups tiles into square supertiles of 2x2..16x16 tiles (§III-C). The
 * grid provides the Morton (Z-order) traversals used by the baseline and
 * inside supertiles, and the tile↔supertile mappings the scheduler and
 * the temperature table aggregate over.
 */

#ifndef LIBRA_GPU_TILING_TILE_GRID_HH
#define LIBRA_GPU_TILING_TILE_GRID_HH

#include <cstdint>
#include <vector>

#include "common/geom.hh"
#include "common/types.hh"

namespace libra
{

/** Tile/supertile geometry for one screen configuration. */
class TileGrid
{
  public:
    TileGrid(std::uint32_t screen_w, std::uint32_t screen_h,
             std::uint32_t tile_size);

    std::uint32_t tileSize() const { return tilePx; }
    std::uint32_t tilesX() const { return nx; }
    std::uint32_t tilesY() const { return ny; }
    std::uint32_t tileCount() const { return nx * ny; }
    std::uint32_t screenWidth() const { return screenW; }
    std::uint32_t screenHeight() const { return screenH; }

    TileId
    tileAt(std::uint32_t tx, std::uint32_t ty) const
    {
        return ty * nx + tx;
    }

    std::uint32_t tileX(TileId id) const { return id % nx; }
    std::uint32_t tileY(TileId id) const { return id / nx; }

    /** Pixel rectangle covered by a tile (clipped to the screen). */
    IRect tileRect(TileId id) const;

    /** Tile ids in Morton (Z) order — the baseline traversal. */
    const std::vector<TileId> &zOrder() const { return zOrderTiles; }

    /** Tile ids in scanline (row-major) order. */
    std::vector<TileId> scanlineOrder() const;

    // --- Supertiles ----------------------------------------------------

    /** Number of supertiles for side length @p st (tiles per side). */
    std::uint32_t superTileCount(std::uint32_t st) const;

    /** Supertile that contains @p tile at side length @p st. */
    SuperTileId superTileOf(TileId tile, std::uint32_t st) const;

    /**
     * Tiles inside supertile @p s (side @p st) in Z-order, clipped to
     * the grid (border supertiles may be partial).
     */
    std::vector<TileId> tilesInSuperTile(SuperTileId s,
                                         std::uint32_t st) const;

    /** Supertile ids in Z-order over the supertile grid. */
    std::vector<SuperTileId> superTileZOrder(std::uint32_t st) const;

    /** Supertile grid width for side @p st. */
    std::uint32_t
    superTilesX(std::uint32_t st) const
    {
        return (nx + st - 1) / st;
    }

    std::uint32_t
    superTilesY(std::uint32_t st) const
    {
        return (ny + st - 1) / st;
    }

  private:
    std::uint32_t screenW;
    std::uint32_t screenH;
    std::uint32_t tilePx;
    std::uint32_t nx;
    std::uint32_t ny;
    std::vector<TileId> zOrderTiles;
};

} // namespace libra

#endif // LIBRA_GPU_TILING_TILE_GRID_HH
