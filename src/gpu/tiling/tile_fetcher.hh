/**
 * @file
 * The Tile Fetcher: walks the tile schedule, reads each tile's primitive
 * list from the Parameter Buffer through the Tile cache, and streams
 * primitives into the per-Raster-Unit FIFOs (paper §II-B, Fig. 5).
 *
 * One fetch stream per Raster Unit: each stream asks the TileScheduler
 * for its next tile (this is where LIBRA's hot/cold assignment happens),
 * fetches list entries a cache line at a time (four 16-byte entries per
 * 64-byte line) plus the shared primitive records, and pushes
 * TileBegin / Prim... / TileEnd into the RU's FIFO, stalling on FIFO
 * back-pressure. The paper notes the fetcher sustains the RUs without
 * becoming a bottleneck (§V-A.3); the batched, pipelined reads here keep
 * that property.
 */

#ifndef LIBRA_GPU_TILING_TILE_FETCHER_HH
#define LIBRA_GPU_TILING_TILE_FETCHER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "core/tile_scheduler.hh"
#include "gpu/raster/raster_unit.hh"
#include "gpu/tiling/polygon_list_builder.hh"
#include "sim/event_queue.hh"

namespace libra
{

class TileFetcher
{
  public:
    TileFetcher(EventQueue &eq, Cache &tile_cache,
                std::vector<RasterSink *> raster_units,
                TileScheduler &scheduler);

    /**
     * Start streaming a binned frame. The fetcher registers itself on
     * each RU's onSpaceFreed hook for the duration of the frame.
     */
    void beginFrame(const BinnedFrame &binned);

    /** True when every stream has delivered its last tile. */
    bool drained() const;

    Counter tilesFetched;
    Counter primsFetched;
    Counter listLineReads;
    Counter recordReads;

  private:
    struct Stream
    {
        bool active = false;      //!< a tile is being streamed
        bool done = false;        //!< scheduler has no more tiles
        bool fetching = false;    //!< a batch read is in flight
        bool pumping = false;     //!< reentrancy guard
        bool beginPending = false; //!< TileBegin not yet pushed
        bool endPending = false;   //!< TileEnd not yet pushed
        TileId tile = 0;
        std::uint32_t idx = 0;     //!< next list entry to fetch
        std::deque<std::uint32_t> ready; //!< fetched prims to push
    };

    /** Make progress on stream @p ru until it blocks. */
    void pump(std::uint32_t ru);

    /** Push fetched primitives while the FIFO accepts them. */
    void drainReady(std::uint32_t ru);

    /** Issue the next batched list/record fetch for stream @p ru. */
    void issueBatch(std::uint32_t ru);

    EventQueue &queue;
    Cache &tileCache;
    std::vector<RasterSink *> rus;
    TileScheduler &sched;

    const BinnedFrame *frame = nullptr;
    std::vector<Stream> streams;
};

} // namespace libra

#endif // LIBRA_GPU_TILING_TILE_FETCHER_HH
