#include "gpu/tiling/polygon_list_builder.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace libra
{

namespace
{

/** Do all four rect corners lie strictly outside edge (a→b)? */
bool
rectOutsideEdge(const Vec2 &a, const Vec2 &b, const IRect &rect,
                float winding)
{
    const Vec2 e = b - a;
    const float x0 = static_cast<float>(rect.x0);
    const float y0 = static_cast<float>(rect.y0);
    const float x1 = static_cast<float>(rect.x1);
    const float y1 = static_cast<float>(rect.y1);
    const Vec2 corners[4] = {{x0, y0}, {x1, y0}, {x0, y1}, {x1, y1}};
    for (const Vec2 &c : corners) {
        // Inside (or on) the edge for the triangle's winding.
        if (winding * cross2(e, c - a) >= 0.0f)
            return false;
    }
    return true;
}

} // namespace

bool
triangleOverlapsRect(const Triangle &tri, const IRect &rect)
{
    if (rect.empty())
        return false;

    // Quick reject: disjoint bounding boxes.
    const float min_x = std::min({tri.v[0].pos.x, tri.v[1].pos.x,
                                  tri.v[2].pos.x});
    const float max_x = std::max({tri.v[0].pos.x, tri.v[1].pos.x,
                                  tri.v[2].pos.x});
    const float min_y = std::min({tri.v[0].pos.y, tri.v[1].pos.y,
                                  tri.v[2].pos.y});
    const float max_y = std::max({tri.v[0].pos.y, tri.v[1].pos.y,
                                  tri.v[2].pos.y});
    if (max_x <= static_cast<float>(rect.x0)
        || min_x >= static_cast<float>(rect.x1)
        || max_y <= static_cast<float>(rect.y0)
        || min_y >= static_cast<float>(rect.y1)) {
        return false;
    }

    // Separating-axis test on the three triangle edges.
    const float area2 = tri.signedArea2();
    if (area2 == 0.0f)
        return false;
    const float winding = area2 > 0.0f ? 1.0f : -1.0f;
    for (int i = 0; i < 3; ++i) {
        const Vec2 a = tri.v[i].pos.xy();
        const Vec2 b = tri.v[(i + 1) % 3].pos.xy();
        if (rectOutsideEdge(a, b, rect, winding))
            return false;
    }
    return true;
}

BinnedFrame
binFrame(const FrameData &frame, const TileGrid &grid)
{
    BinnedFrame out;
    out.tileLists.resize(grid.tileCount());

    const IRect viewport{0, 0,
                         static_cast<std::int32_t>(grid.screenWidth()),
                         static_cast<std::int32_t>(grid.screenHeight())};

    std::uint32_t draw_id = 0;
    for (const auto &draw : frame.draws) {
        for (const Triangle &src : draw.tris) {
            Triangle tri = src;
            tri.drawId = draw_id;

            // Culling: degenerate or fully outside the viewport.
            if (tri.signedArea2() == 0.0f)
                continue;
            const IRect bbox = tri.boundingBox(viewport);
            if (bbox.empty())
                continue;

            const auto index =
                static_cast<std::uint32_t>(out.tris.size());
            bool binned = false;

            const std::uint32_t ts = grid.tileSize();
            const std::uint32_t tx0 =
                static_cast<std::uint32_t>(bbox.x0) / ts;
            const std::uint32_t ty0 =
                static_cast<std::uint32_t>(bbox.y0) / ts;
            const std::uint32_t tx1 = std::min(
                grid.tilesX() - 1,
                static_cast<std::uint32_t>(bbox.x1 - 1) / ts);
            const std::uint32_t ty1 = std::min(
                grid.tilesY() - 1,
                static_cast<std::uint32_t>(bbox.y1 - 1) / ts);

            for (std::uint32_t ty = ty0; ty <= ty1; ++ty) {
                for (std::uint32_t tx = tx0; tx <= tx1; ++tx) {
                    const TileId tile = grid.tileAt(tx, ty);
                    if (!triangleOverlapsRect(tri, grid.tileRect(tile)))
                        continue;
                    auto &list = out.tileLists[tile];
                    if (list.size()
                        >= out.layout.maxEntriesPerTile) {
                        warn("tile ", tile,
                             " overflows its parameter-buffer list");
                        continue;
                    }
                    list.push_back(index);
                    binned = true;
                }
            }
            if (binned) {
                out.tris.push_back(tri);
                out.triVertexCost.push_back(draw.vertexCostCycles);
            }
        }
        ++draw_id;
    }
    return out;
}

} // namespace libra
