/**
 * @file
 * The Polygon List Builder: bins screen-space primitives into per-tile
 * lists (paper §II-A), the sort-middle step that makes TBR possible.
 *
 * The functional result is a BinnedFrame: the frame's triangles in
 * program order plus, for every tile, the indices of the triangles that
 * overlap it (still in program order — required for correctness, §II-B).
 * The structure also defines the Parameter Buffer address layout so the
 * timing model can charge binning writes and tile-fetch reads to real
 * addresses.
 */

#ifndef LIBRA_GPU_TILING_POLYGON_LIST_BUILDER_HH
#define LIBRA_GPU_TILING_POLYGON_LIST_BUILDER_HH

#include <cstdint>
#include <vector>

#include "cache/mem_system.hh"
#include "common/geom.hh"
#include "common/types.hh"
#include "gpu/tiling/tile_grid.hh"
#include "workload/scene.hh"

namespace libra
{

/** Parameter-buffer layout constants. */
struct ParameterBufferLayout
{
    std::uint32_t listEntryBytes = 16;
    std::uint32_t primRecordBytes = 64;
    std::uint32_t maxEntriesPerTile = 4096;

    /** Address of tile @p tile's k-th list entry. */
    Addr
    listEntryAddr(TileId tile, std::uint32_t k) const
    {
        return addr_map::parameterBufferBase
            + static_cast<Addr>(tile) * maxEntriesPerTile * listEntryBytes
            + static_cast<Addr>(k) * listEntryBytes;
    }

    /** Address of the shared record of primitive @p index. */
    Addr
    primRecordAddr(std::uint32_t index) const
    {
        // Records live past the largest possible list region.
        constexpr Addr record_base = addr_map::parameterBufferBase
            + 0x1000'0000ull;
        return record_base + static_cast<Addr>(index) * 64;
    }
};

/** A frame after binning. */
struct BinnedFrame
{
    /** All visible triangles, program order, drawId preserved. */
    std::vector<Triangle> tris;

    /** Vertex-shader cycles for each triangle's draw call. */
    std::vector<std::uint16_t> triVertexCost;

    /** Per tile: indices into tris, in program order. */
    std::vector<std::vector<std::uint32_t>> tileLists;

    ParameterBufferLayout layout;

    /** Number of (triangle, tile) pairs — binning write volume. */
    std::uint64_t
    binEntries() const
    {
        std::uint64_t n = 0;
        for (const auto &list : tileLists)
            n += list.size();
        return n;
    }
};

/**
 * Exact triangle/rectangle overlap test (separating axis). Exposed for
 * unit testing; bbox-only binning would overbin long thin triangles.
 */
bool triangleOverlapsRect(const Triangle &tri, const IRect &rect);

/**
 * Bin a frame. Degenerate (zero-area) and fully off-screen triangles
 * are culled here, mirroring the Culling stage of the geometry pipeline.
 */
BinnedFrame binFrame(const FrameData &frame, const TileGrid &grid);

} // namespace libra

#endif // LIBRA_GPU_TILING_POLYGON_LIST_BUILDER_HH
