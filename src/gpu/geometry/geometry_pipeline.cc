#include "gpu/geometry/geometry_pipeline.hh"

#include <algorithm>
#include <memory>

#include "common/log.hh"

namespace libra
{

GeometryPipeline::GeometryPipeline(EventQueue &eq,
                                   const GeometryConfig &cfg,
                                   Cache &vertex_cache, MemSink &l2_sink)
    : queue(eq), config(cfg), vertexCache(vertex_cache), l2(l2_sink)
{
    libra_assert(config.vertexProcessors > 0, "no vertex processors");
}

void
GeometryPipeline::run(const FrameData &frame, const BinnedFrame &binned,
                      std::function<void(Tick)> on_done)
{
    curFrame = &frame;
    curBinned = &binned;
    onDone = std::move(on_done);
    transformReadyAt = queue.now();
    processDraw(frame, 0);
}

void
GeometryPipeline::processDraw(const FrameData &frame, std::size_t draw_idx)
{
    if (draw_idx >= frame.draws.size()) {
        startBinning();
        return;
    }

    const DrawCall &draw = frame.draws[draw_idx];
    ++drawsProcessed;
    verticesProcessed += draw.vertexCount;

    // Vertex fetch: stream the draw's vertex data through the Vertex
    // cache; the transform phase starts when the data is in.
    const std::uint32_t bytes =
        std::max(1u, draw.vertexCount * config.vertexBytes);

    vertexCache.access(MemReq{
        draw.vertexAddr, bytes, false, TrafficClass::Geometry, invalidId,
        [this, &frame, draw_idx](Tick fetched) {
            const DrawCall &d = frame.draws[draw_idx];
            // Transform: pipelined across the vertex processors, plus a
            // fixed per-draw overhead (state changes, driver work).
            const Tick cycles = config.drawOverheadCycles
                + static_cast<Tick>(d.vertexCount) * d.vertexCostCycles
                    / config.vertexProcessors;
            transformReadyAt =
                std::max(transformReadyAt, fetched) + cycles;
            queue.schedule(transformReadyAt, [this, &frame, draw_idx] {
                processDraw(frame, draw_idx + 1);
            });
        }});
}

void
GeometryPipeline::startBinning()
{
    // The Polygon List Builder consumes assembled primitives and emits
    // parameter-buffer traffic: one record per primitive plus one list
    // entry per (primitive, tile) pair, written through the L2.
    const BinnedFrame &binned = *curBinned;
    const std::uint64_t entries = binned.binEntries();

    // Collect every parameter-buffer write, then pace them evenly over
    // the binning window — the Polygon List Builder emits entries as it
    // consumes primitives, not as one burst.
    std::vector<MemReq> pb_writes;
    for (TileId tile = 0; tile < binned.tileLists.size(); ++tile) {
        const auto &list = binned.tileLists[tile];
        if (list.empty())
            continue;
        const std::uint32_t entries_per_line =
            std::max(1u, 64u / binned.layout.listEntryBytes);
        for (std::uint32_t first = 0; first < list.size();
             first += entries_per_line) {
            pb_writes.push_back(MemReq{
                binned.layout.listEntryAddr(tile, first), 64, true,
                TrafficClass::ParameterBuffer, invalidId, nullptr});
        }
    }
    for (std::uint32_t prim = 0;
         prim < static_cast<std::uint32_t>(binned.tris.size()); ++prim) {
        pb_writes.push_back(MemReq{binned.layout.primRecordAddr(prim),
                                   binned.layout.primRecordBytes, true,
                                   TrafficClass::ParameterBuffer,
                                   invalidId, nullptr});
    }
    binEntriesWritten += entries;
    primRecordsWritten += binned.tris.size();

    const Tick bin_cycles = std::max<std::uint64_t>(
        1, entries / std::max(config.binEntriesPerCycle, 1u));
    const Tick bin_start = std::max(transformReadyAt, queue.now());

    constexpr std::size_t batch_size = 32;
    const std::size_t batches =
        (pb_writes.size() + batch_size - 1) / std::max<std::size_t>(
            batch_size, 1);
    if (batches > 0) {
        const Tick spacing =
            std::max<Tick>(1, bin_cycles / batches);
        auto writes =
            std::make_shared<std::vector<MemReq>>(std::move(pb_writes));
        for (std::size_t b = 0; b < batches; ++b) {
            queue.schedule(bin_start + b * spacing, [this, writes, b] {
                const std::size_t begin = b * batch_size;
                const std::size_t end = std::min(begin + batch_size,
                                                 writes->size());
                for (std::size_t i = begin; i < end; ++i)
                    l2.access(std::move((*writes)[i]));
            });
        }
    }

    const Tick done = bin_start + bin_cycles;
    queue.schedule(done, [this, done] {
        auto cb = std::move(onDone);
        curFrame = nullptr;
        curBinned = nullptr;
        if (cb)
            cb(done);
    });
}

} // namespace libra
