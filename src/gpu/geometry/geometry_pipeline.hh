/**
 * @file
 * The Geometry Pipeline + Tiling Engine timing model (paper §II-A).
 *
 * Per draw call: the Vertex Fetcher streams vertex data through the
 * Vertex cache, the Vertex Processors transform vertices at a
 * user-shader-dependent rate, primitives are assembled and culled, and
 * the Polygon List Builder writes the per-tile lists and primitive
 * records into the Parameter Buffer (posted writes through the L2).
 *
 * The functional side of binning lives in polygon_list_builder.*; this
 * class charges its time and memory traffic. Rasterization dominates
 * frames by far (Fig. 1: ~88% raster), but the geometry phase matters to
 * LIBRA because the temperature-table ranking must hide beneath it
 * (§III-E) — the Gpu asserts that every frame.
 */

#ifndef LIBRA_GPU_GEOMETRY_GEOMETRY_PIPELINE_HH
#define LIBRA_GPU_GEOMETRY_GEOMETRY_PIPELINE_HH

#include <cstdint>
#include <functional>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "gpu/tiling/polygon_list_builder.hh"
#include "sim/event_queue.hh"
#include "workload/scene.hh"

namespace libra
{

/** Geometry-pipeline configuration slice. */
struct GeometryConfig
{
    std::uint32_t vertexProcessors = 2;
    std::uint32_t vertexBytes = 32;
    std::uint32_t binEntriesPerCycle = 2;
    std::uint32_t drawOverheadCycles = 400; //!< per-draw-call setup
};

class GeometryPipeline
{
  public:
    GeometryPipeline(EventQueue &eq, const GeometryConfig &cfg,
                     Cache &vertex_cache, MemSink &l2);

    /**
     * Run the geometry + tiling phases for one frame; @p on_done fires
     * at the tick the Parameter Buffer is complete and the Raster
     * Pipeline may start.
     */
    void run(const FrameData &frame, const BinnedFrame &binned,
             std::function<void(Tick)> on_done);

    Counter verticesProcessed;
    Counter drawsProcessed;
    Counter binEntriesWritten;
    Counter primRecordsWritten;

  private:
    void processDraw(const FrameData &frame, std::size_t draw_idx);
    void startBinning();

    EventQueue &queue;
    GeometryConfig config;
    Cache &vertexCache;
    MemSink &l2;

    const FrameData *curFrame = nullptr;
    const BinnedFrame *curBinned = nullptr;
    std::function<void(Tick)> onDone;
    Tick transformReadyAt = 0;
};

} // namespace libra

#endif // LIBRA_GPU_GEOMETRY_GEOMETRY_PIPELINE_HH
