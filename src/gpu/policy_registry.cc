#include "gpu/policy_registry.hh"

namespace libra
{

const std::vector<PolicyInfo> &
policyRegistry()
{
    // Stable registration order: tests and the fuzzer index into this
    // list, and reordering would silently reshuffle fuzz seeds.
    static const std::vector<PolicyInfo> registry{
        {"zorder", "interleaved Z-order tile assignment (PTR baseline)",
         SchedulerPolicy::ZOrder, false},
        {"scanline", "row-major traversal (§II-B conventional order)",
         SchedulerPolicy::Scanline, false},
        {"supertile", "fixed-size Z-order supertiles (Fig. 16 static)",
         SchedulerPolicy::StaticSupertile, false},
        {"temperature",
         "temperature-ranked hot/cold order, fixed supertiles",
         SchedulerPolicy::TemperatureStatic, false},
        {"libra", "full LIBRA adaptive scheduler (§III-D)",
         SchedulerPolicy::Libra, false},
        {"re", "Rendering Elimination over Z-order PTR (Anglada et al.)",
         SchedulerPolicy::ZOrder, true},
        {"re-libra", "Rendering Elimination composed with LIBRA",
         SchedulerPolicy::Libra, true},
    };
    return registry;
}

const PolicyInfo *
findPolicy(std::string_view name)
{
    for (const PolicyInfo &info : policyRegistry())
        if (name == info.name)
            return &info;
    return nullptr;
}

Status
applyPolicy(GpuConfig &cfg, std::string_view name)
{
    const PolicyInfo *info = findPolicy(name);
    if (!info) {
        return Status::error(ErrorCode::InvalidArgument,
                             "unknown policy \"", std::string(name),
                             "\"; registered: ", policyNames());
    }
    cfg.sched.policy = info->sched;
    cfg.renderingElimination = info->renderingElimination;
    return Status::ok();
}

std::string
policyNames()
{
    std::string names;
    for (const PolicyInfo &info : policyRegistry()) {
        if (!names.empty())
            names += ", ";
        names += info.name;
    }
    return names;
}

const char *
policyNameFor(const GpuConfig &cfg)
{
    for (const PolicyInfo &info : policyRegistry()) {
        if (info.sched == cfg.sched.policy
            && info.renderingElimination == cfg.renderingElimination) {
            return info.name;
        }
    }
    return "?";
}

} // namespace libra
