#include "gpu/runner.hh"

#include <cmath>
#include <memory>

#include "common/log.hh"

namespace libra
{

std::uint64_t
RunResult::totalCycles() const
{
    std::uint64_t total = 0;
    for (const auto &fs : frames)
        total += fs.totalCycles;
    return total;
}

std::uint64_t
RunResult::totalRasterCycles() const
{
    std::uint64_t total = 0;
    for (const auto &fs : frames)
        total += fs.rasterCycles;
    return total;
}

std::uint64_t
RunResult::totalGeomCycles() const
{
    std::uint64_t total = 0;
    for (const auto &fs : frames)
        total += fs.geomCycles;
    return total;
}

std::uint64_t
RunResult::dramAccesses() const
{
    std::uint64_t total = 0;
    for (const auto &fs : frames)
        total += fs.dramReads + fs.dramWrites;
    return total;
}

std::uint64_t
RunResult::textureRequests() const
{
    std::uint64_t total = 0;
    for (const auto &fs : frames)
        total += fs.textureRequests;
    return total;
}

double
RunResult::avgTextureLatency() const
{
    double weighted = 0.0;
    std::uint64_t reqs = 0;
    for (const auto &fs : frames) {
        weighted += fs.avgTextureLatency
            * static_cast<double>(fs.textureRequests);
        reqs += fs.textureRequests;
    }
    return reqs == 0 ? 0.0 : weighted / static_cast<double>(reqs);
}

double
RunResult::textureHitRatio() const
{
    std::uint64_t misses = 0;
    std::uint64_t accesses = 0;
    for (const auto &fs : frames) {
        misses += fs.textureMisses;
        accesses += fs.textureL1Accesses;
    }
    if (accesses == 0)
        return 1.0;
    return 1.0
        - static_cast<double>(misses) / static_cast<double>(accesses);
}

double
RunResult::avgDramReadLatency() const
{
    double weighted = 0.0;
    std::uint64_t reads = 0;
    for (const auto &fs : frames) {
        weighted += fs.avgDramReadLatency
            * static_cast<double>(fs.dramReads);
        reads += fs.dramReads;
    }
    return reads == 0 ? 0.0 : weighted / static_cast<double>(reads);
}

double
RunResult::totalEnergyMj() const
{
    double total = 0.0;
    for (const auto &fs : frames)
        total += fs.energy.totalMj;
    return total;
}

double
RunResult::avgReplicationRatio() const
{
    if (frames.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &fs : frames)
        total += fs.replicationRatio;
    return total / static_cast<double>(frames.size());
}

double
RunResult::fps(double clock_hz) const
{
    const std::uint64_t cycles = totalCycles();
    if (cycles == 0 || frames.empty())
        return 0.0;
    const double seconds = static_cast<double>(cycles) / clock_hz;
    return static_cast<double>(frames.size()) / seconds;
}

namespace
{

/** Entrywise-add @p from into @p into (counter names are identical for
 *  every Gpu instance built from one config). */
void
accumulateCounters(std::map<std::string, std::uint64_t> &into,
                   const std::map<std::string, std::uint64_t> &from)
{
    for (const auto &[name, value] : from)
        into[name] += value;
}

} // namespace

Result<RunResult>
runBenchmark(const Scene &scene, const GpuConfig &cfg,
             std::uint32_t frames, std::uint32_t first_frame)
{
    const BenchmarkSpec &spec = scene.spec();
    if (Status st = cfg.validate(); !st.isOk()) {
        return Status::error(st.code(), "benchmark ", spec.abbrev,
                             ": invalid GPU configuration: ",
                             st.message());
    }
    if (scene.screenWidth() != cfg.screenWidth
        || scene.screenHeight() != cfg.screenHeight) {
        return Status::error(ErrorCode::InvalidArgument, "benchmark ",
                             spec.abbrev, ": scene built for ",
                             scene.screenWidth(), "x",
                             scene.screenHeight(),
                             " does not match configured ",
                             cfg.screenWidth, "x", cfg.screenHeight);
    }

    RunResult result;
    result.benchmark = spec.abbrev;
    result.config = cfg;
    if (cfg.traceEvents)
        result.trace = std::make_shared<TraceSink>();

    auto gpu = std::make_unique<Gpu>(cfg);
    gpu->setTraceSink(result.trace.get());
    result.frames.reserve(frames);
    for (std::uint32_t f = 0; f < frames; ++f) {
        const FrameData frame = scene.frame(first_frame + f);
        Result<FrameStats> fs =
            gpu->tryRenderFrame(frame, scene.textures());
        if (fs.isOk()) {
            result.frames.push_back(std::move(*fs));
            continue;
        }
        const ErrorCode code = fs.status().code();
        if (code != ErrorCode::WatchdogExpired
            && code != ErrorCode::NoProgress) {
            return fs.status();
        }
        // Watchdog fired: degrade gracefully — drop this frame,
        // rebuild the wedged GPU and carry on with the sweep. The
        // wedged instance's counters are merged first: work done before
        // the rebuild (including the aborted frame's partial progress)
        // must survive into the run totals.
        warn("benchmark ", spec.abbrev, ": skipping frame ",
             first_frame + f, ": ", fs.status().toString());
        result.skippedFrames.push_back(first_frame + f);
        accumulateCounters(result.counters, gpu->stats().values());
        gpu = std::make_unique<Gpu>(cfg);
        gpu->setTraceSink(result.trace.get());
    }
    accumulateCounters(result.counters, gpu->stats().values());
    return result;
}

Result<RunResult>
runBenchmark(const BenchmarkSpec &spec, const GpuConfig &cfg,
             std::uint32_t frames, std::uint32_t first_frame)
{
    if (Status st = cfg.validate(); !st.isOk()) {
        return Status::error(st.code(), "benchmark ", spec.abbrev,
                             ": invalid GPU configuration: ",
                             st.message());
    }
    const Scene scene(spec, cfg.screenWidth, cfg.screenHeight);
    return runBenchmark(scene, cfg, frames, first_frame);
}

Result<double>
memoryTimeFraction(const BenchmarkSpec &spec, const GpuConfig &cfg,
                   std::uint32_t frames)
{
    GpuConfig ideal = cfg;
    ideal.idealMemory = true;
    const Result<RunResult> real = runBenchmark(spec, cfg, frames);
    if (!real.isOk())
        return real.status();
    const Result<RunResult> perfect = runBenchmark(spec, ideal, frames);
    if (!perfect.isOk())
        return perfect.status();
    const auto real_cycles = static_cast<double>(real->totalCycles());
    const auto ideal_cycles =
        static_cast<double>(perfect->totalCycles());
    if (real_cycles <= 0.0)
        return 0.0;
    return std::max(0.0, 1.0 - ideal_cycles / real_cycles);
}

double
speedup(const RunResult &a, const RunResult &b)
{
    const auto b_cycles = static_cast<double>(b.totalCycles());
    return b_cycles == 0.0
        ? 0.0
        : static_cast<double>(a.totalCycles()) / b_cycles;
}

double
geomean(const std::vector<double> &values)
{
    // Non-positive entries (a zero-cycle run, a failed data point) are
    // skipped with a warning instead of aborting: one bad sample should
    // degrade the average, not kill a whole results table.
    std::size_t used = 0;
    double log_sum = 0.0;
    for (const double v : values) {
        if (!(v > 0.0)) {
            warn("geomean: skipping non-positive value ", v);
            continue;
        }
        log_sum += std::log(v);
        ++used;
    }
    if (used == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(used));
}

} // namespace libra
