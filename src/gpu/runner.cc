#include "gpu/runner.hh"

#include <cmath>
#include <filesystem>
#include <memory>
#include <utility>

#include "check/snapshot.hh"
#include "common/log.hh"
#include "sim/sweep_journal.hh"
#include "trace/json.hh"

namespace libra
{

std::uint64_t
RunResult::totalCycles() const
{
    std::uint64_t total = 0;
    for (const auto &fs : frames)
        total += fs.totalCycles;
    return total;
}

std::uint64_t
RunResult::totalRasterCycles() const
{
    std::uint64_t total = 0;
    for (const auto &fs : frames)
        total += fs.rasterCycles;
    return total;
}

std::uint64_t
RunResult::totalGeomCycles() const
{
    std::uint64_t total = 0;
    for (const auto &fs : frames)
        total += fs.geomCycles;
    return total;
}

std::uint64_t
RunResult::dramAccesses() const
{
    std::uint64_t total = 0;
    for (const auto &fs : frames)
        total += fs.dramReads + fs.dramWrites;
    return total;
}

std::uint64_t
RunResult::textureRequests() const
{
    std::uint64_t total = 0;
    for (const auto &fs : frames)
        total += fs.textureRequests;
    return total;
}

double
RunResult::avgTextureLatency() const
{
    double weighted = 0.0;
    std::uint64_t reqs = 0;
    for (const auto &fs : frames) {
        weighted += fs.avgTextureLatency
            * static_cast<double>(fs.textureRequests);
        reqs += fs.textureRequests;
    }
    return reqs == 0 ? 0.0 : weighted / static_cast<double>(reqs);
}

double
RunResult::textureHitRatio() const
{
    std::uint64_t misses = 0;
    std::uint64_t accesses = 0;
    for (const auto &fs : frames) {
        misses += fs.textureMisses;
        accesses += fs.textureL1Accesses;
    }
    if (accesses == 0)
        return 1.0;
    return 1.0
        - static_cast<double>(misses) / static_cast<double>(accesses);
}

double
RunResult::avgDramReadLatency() const
{
    double weighted = 0.0;
    std::uint64_t reads = 0;
    for (const auto &fs : frames) {
        weighted += fs.avgDramReadLatency
            * static_cast<double>(fs.dramReads);
        reads += fs.dramReads;
    }
    return reads == 0 ? 0.0 : weighted / static_cast<double>(reads);
}

double
RunResult::totalEnergyMj() const
{
    double total = 0.0;
    for (const auto &fs : frames)
        total += fs.energy.totalMj;
    return total;
}

double
RunResult::avgReplicationRatio() const
{
    if (frames.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &fs : frames)
        total += fs.replicationRatio;
    return total / static_cast<double>(frames.size());
}

double
RunResult::fps(double clock_hz) const
{
    const std::uint64_t cycles = totalCycles();
    if (cycles == 0 || frames.empty())
        return 0.0;
    const double seconds = static_cast<double>(cycles) / clock_hz;
    return static_cast<double>(frames.size()) / seconds;
}

namespace
{

/** Entrywise-add @p from into @p into (counter names are identical for
 *  every Gpu instance built from one config). */
void
accumulateCounters(std::map<std::string, std::uint64_t> &into,
                   const std::map<std::string, std::uint64_t> &from)
{
    for (const auto &[name, value] : from)
        into[name] += value;
}

std::uint64_t
sceneHashOf(const Scene &scene, const GpuConfig &cfg)
{
    return snapshotSceneHash(scene.spec().abbrev, cfg.screenWidth,
                             cfg.screenHeight);
}

/** Complete `libra.snapshot/1` image of a run paused after
 *  @p frames_done frames: run-so-far + trace + machine sections. */
std::vector<std::uint8_t>
buildSnapshot(const Scene &scene, const GpuConfig &cfg,
              const RunResult &result, const Gpu &gpu,
              std::uint32_t first_frame, std::uint32_t frames_done)
{
    SnapshotHeader header;
    header.configHash = cfg.configHash();
    header.warmPrefixHash = cfg.warmPrefixHash();
    header.sceneHash = sceneHashOf(scene, cfg);
    header.firstFrame = first_frame;
    header.framesDone = frames_done;

    SnapshotWriter w(header);
    w.beginSection(SnapSection::Result);
    JsonWriter json;
    runResultToJson(json, result);
    w.putString(json.str());
    w.endSection();

    w.beginSection(SnapSection::Trace);
    w.putBool(result.trace != nullptr);
    if (result.trace)
        result.trace->exportState(w);
    w.endSection();

    gpu.saveState(w);
    return w.finish();
}

/**
 * Rebuild (result, gpu) from a snapshot image. Returns the number of
 * frames already done on success. Key mismatches (config, scene, frame
 * range, code version) are FailedPrecondition, structural damage is
 * CorruptData — the caller treats both as "fall back to a cold run".
 */
Result<std::uint32_t>
restoreFromSnapshot(std::vector<std::uint8_t> bytes, const Scene &scene,
                    const GpuConfig &cfg, std::uint32_t frames,
                    std::uint32_t first_frame, RunResult &result,
                    std::unique_ptr<Gpu> &gpu)
{
    Result<SnapshotReader> parsed =
        SnapshotReader::parse(std::move(bytes));
    if (!parsed.isOk())
        return parsed.status();
    SnapshotReader r = std::move(*parsed);

    const SnapshotHeader &h = r.header();
    if (h.codeVersion != kSnapshotCodeVersion) {
        return Status::error(ErrorCode::FailedPrecondition,
                             "snapshot code version ", h.codeVersion,
                             " does not match this build's ",
                             kSnapshotCodeVersion);
    }
    // The exact config, or one sharing the warm prefix (the adaptive
    // thresholds pinned out of warmPrefixHash first matter after the
    // prefix frames, which therefore rendered byte-identically).
    if (h.configHash != cfg.configHash()
        && h.warmPrefixHash != cfg.warmPrefixHash()) {
        return Status::error(ErrorCode::FailedPrecondition,
                             "snapshot was written by a different GPU "
                             "configuration");
    }
    if (h.sceneHash != sceneHashOf(scene, cfg)) {
        return Status::error(ErrorCode::FailedPrecondition,
                             "snapshot was written for a different "
                             "scene");
    }
    if (h.firstFrame != first_frame) {
        return Status::error(ErrorCode::FailedPrecondition,
                             "snapshot first frame ", h.firstFrame,
                             " does not match the requested ",
                             first_frame);
    }
    if (h.framesDone > frames) {
        return Status::error(ErrorCode::FailedPrecondition,
                             "snapshot already rendered ", h.framesDone,
                             " frames, more than the requested ",
                             frames);
    }

    r.openSection(SnapSection::Result);
    const std::string result_json = r.takeString();
    r.closeSection();
    if (!r.ok())
        return r.status();
    Result<JsonValue> doc = parseJson(result_json);
    if (!doc.isOk()) {
        return Status::error(ErrorCode::CorruptData,
                             "snapshot result section: ",
                             doc.status().message());
    }
    Result<RunResult> saved = runResultFromJson(*doc);
    if (!saved.isOk())
        return saved.status();
    RunResult restored = std::move(*saved);
    restored.config = cfg;
    if (restored.frames.size() + restored.skippedFrames.size()
        != h.framesDone) {
        return Status::error(ErrorCode::CorruptData,
                             "snapshot claims ", h.framesDone,
                             " frames done but carries ",
                             restored.frames.size(), " + ",
                             restored.skippedFrames.size(),
                             " frame records");
    }

    r.openSection(SnapSection::Trace);
    const bool has_trace = r.takeBool();
    if (has_trace != cfg.traceEvents) {
        return Status::error(ErrorCode::FailedPrecondition,
                             "snapshot trace presence does not match "
                             "GpuConfig::traceEvents");
    }
    if (has_trace) {
        // Import before setTraceSink: the lanes must exist, in saved
        // order, so the Gpu's lane lookups find them by name and lane
        // ids stay stable across the restore.
        restored.trace = std::make_shared<TraceSink>();
        restored.trace->importState(r);
    }
    r.closeSection();
    if (!r.ok())
        return r.status();

    auto fresh = std::make_unique<Gpu>(cfg);
    fresh->setTraceSink(restored.trace.get());
    if (Status st = fresh->loadState(r); !st.isOk())
        return st;
    if (Status st = r.finish(); !st.isOk())
        return st;

    result = std::move(restored);
    gpu = std::move(fresh);
    return h.framesDone;
}

/** Dir-based restore: pick the freshest usable manifest entry. A
 *  NotFound return means "nothing to restore" (silent cold start). */
Result<std::uint32_t>
restoreFromDir(const std::string &dir, const Scene &scene,
               const GpuConfig &cfg, std::uint32_t frames,
               std::uint32_t first_frame, RunResult &result,
               std::unique_ptr<Gpu> &gpu)
{
    Result<std::vector<SnapshotManifestEntry>> manifest =
        loadSnapshotManifest(dir);
    if (!manifest.isOk())
        return manifest.status();
    const SnapshotManifestEntry *entry =
        findSnapshotEntry(*manifest, cfg.configHash(),
                          sceneHashOf(scene, cfg), first_frame, frames);
    if (!entry) {
        return Status::error(ErrorCode::NotFound,
                             "no usable snapshot in ", dir);
    }
    const std::string path =
        (std::filesystem::path(dir) / entry->file).string();
    Result<std::vector<std::uint8_t>> bytes = readSnapshotFile(path);
    if (!bytes.isOk())
        return bytes.status();
    return restoreFromSnapshot(std::move(*bytes), scene, cfg, frames,
                               first_frame, result, gpu);
}

/** Frame-boundary checkpoint hook: capture the warm-prefix image
 *  and/or write a periodic snapshot file + manifest row. Write
 *  failures degrade to a warning — checkpointing must never change a
 *  run's outcome. */
void
maybeCheckpoint(const CheckpointPlan &plan, const Scene &scene,
                const GpuConfig &cfg, const RunResult &result,
                const Gpu &gpu, std::uint32_t first_frame,
                std::uint32_t frames_done, std::uint32_t frames_total)
{
    if (plan.captureAfter && frames_done == plan.captureAfterFrames) {
        *plan.captureAfter = buildSnapshot(scene, cfg, result, gpu,
                                           first_frame, frames_done);
    }
    if (plan.dir.empty() || plan.every == 0 || frames_done == 0
        || frames_done % plan.every != 0
        || frames_done >= frames_total) {
        return; // the final frame needs no checkpoint: the run is done
    }
    const std::vector<std::uint8_t> bytes =
        buildSnapshot(scene, cfg, result, gpu, first_frame, frames_done);
    // Plan setup already validated the directory once; re-creating it
    // here covers a mid-run deletion. The error contract is the same:
    // warn, skip the write, never change the run's outcome.
    std::error_code ec;
    std::filesystem::create_directories(plan.dir, ec);
    if (ec) {
        warn("checkpoint: cannot create directory ", plan.dir, ": ",
             ec.message(), " — skipping snapshot at frame ",
             first_frame + frames_done);
        return;
    }
    const std::uint64_t scene_hash = sceneHashOf(scene, cfg);
    const std::string name =
        snapshotFileName(cfg.configHash(), scene_hash, frames_done);
    const std::string path =
        (std::filesystem::path(plan.dir) / name).string();
    if (Status st = writeSnapshotFile(path, bytes); !st.isOk()) {
        warn("checkpoint: ", st.toString());
        return;
    }
    SnapshotManifestEntry entry;
    entry.configHash = cfg.configHash();
    entry.sceneHash = scene_hash;
    entry.codeVersion = kSnapshotCodeVersion;
    entry.firstFrame = first_frame;
    entry.framesDone = frames_done;
    entry.file = name;
    if (Status st = recordSnapshotInManifest(plan.dir, entry);
        !st.isOk()) {
        warn("checkpoint manifest: ", st.toString());
    }
}

} // namespace

Result<RunResult>
runBenchmark(const Scene &scene, const GpuConfig &cfg,
             std::uint32_t frames, std::uint32_t first_frame,
             const CheckpointPlan &checkpoint)
{
    const BenchmarkSpec &spec = scene.spec();
    if (Status st = cfg.validate(); !st.isOk()) {
        return Status::error(st.code(), "benchmark ", spec.abbrev,
                             ": invalid GPU configuration: ",
                             st.message());
    }
    if (scene.screenWidth() != cfg.screenWidth
        || scene.screenHeight() != cfg.screenHeight) {
        return Status::error(ErrorCode::InvalidArgument, "benchmark ",
                             spec.abbrev, ": scene built for ",
                             scene.screenWidth(), "x",
                             scene.screenHeight(),
                             " does not match configured ",
                             cfg.screenWidth, "x", cfg.screenHeight);
    }

    // Surface an unusable checkpoint directory once, at plan setup,
    // instead of silently ignoring the create_directories error on
    // every frame. Warn-only: checkpointing must never change a run's
    // outcome, so the run proceeds with periodic snapshots disabled.
    CheckpointPlan plan = checkpoint;
    if (!plan.dir.empty() && plan.every != 0) {
        std::error_code ec;
        std::filesystem::create_directories(plan.dir, ec);
        if (ec) {
            warn("benchmark ", spec.abbrev,
                 ": cannot create checkpoint directory ", plan.dir,
                 ": ", ec.message(),
                 " — periodic checkpoints disabled for this run");
            plan.every = 0;
        }
    }

    RunResult result;
    result.benchmark = spec.abbrev;
    result.config = cfg;

    // --- Restore: warm-start bytes first, then the checkpoint dir ----
    // Every restore failure except "nothing there" warns and degrades
    // to a cold run; a snapshot can speed a run up, never break it.
    std::unique_ptr<Gpu> gpu;
    std::uint32_t start = 0;
    if (checkpoint.warmStart
        || (!checkpoint.dir.empty() && checkpoint.restore)) {
        Result<std::uint32_t> restored = checkpoint.warmStart
            ? restoreFromSnapshot(*checkpoint.warmStart, scene, cfg,
                                  frames, first_frame, result, gpu)
            : restoreFromDir(checkpoint.dir, scene, cfg, frames,
                             first_frame, result, gpu);
        if (restored.isOk()) {
            start = *restored;
        } else if (restored.status().code() != ErrorCode::NotFound) {
            warn("benchmark ", spec.abbrev,
                 ": checkpoint restore failed, falling back to a cold "
                 "run: ", restored.status().toString());
            result = RunResult{};
            result.benchmark = spec.abbrev;
            result.config = cfg;
            gpu.reset();
        }
    }
    if (!gpu) {
        if (cfg.traceEvents)
            result.trace = std::make_shared<TraceSink>();
        gpu = std::make_unique<Gpu>(cfg);
        gpu->setTraceSink(result.trace.get());
        start = 0;
    }

    result.frames.reserve(frames);
    for (std::uint32_t f = start; f < frames; ++f) {
        const FrameData frame = scene.frame(first_frame + f);
        Result<FrameStats> fs =
            gpu->tryRenderFrame(frame, scene.textures());
        if (fs.isOk()) {
            result.frames.push_back(std::move(*fs));
        } else {
            const ErrorCode code = fs.status().code();
            if (code != ErrorCode::WatchdogExpired
                && code != ErrorCode::NoProgress) {
                return fs.status();
            }
            // Watchdog fired: degrade gracefully — drop this frame,
            // rebuild the wedged GPU and carry on with the sweep. The
            // wedged instance's counters are merged first: work done
            // before the rebuild (including the aborted frame's
            // partial progress) must survive into the run totals.
            warn("benchmark ", spec.abbrev, ": skipping frame ",
                 first_frame + f, ": ", fs.status().toString());
            result.skippedFrames.push_back(first_frame + f);
            accumulateCounters(result.counters, gpu->stats().values());
            gpu = std::make_unique<Gpu>(cfg);
            gpu->setTraceSink(result.trace.get());
        }
        if (plan.enabled()) {
            maybeCheckpoint(plan, scene, cfg, result, *gpu,
                            first_frame, f + 1, frames);
        }
    }
    accumulateCounters(result.counters, gpu->stats().values());
    return result;
}

Result<RunResult>
runBenchmark(const Scene &scene, const GpuConfig &cfg,
             std::uint32_t frames, std::uint32_t first_frame)
{
    return runBenchmark(scene, cfg, frames, first_frame,
                        CheckpointPlan{});
}

Result<RunResult>
runBenchmark(const BenchmarkSpec &spec, const GpuConfig &cfg,
             std::uint32_t frames, std::uint32_t first_frame)
{
    if (Status st = cfg.validate(); !st.isOk()) {
        return Status::error(st.code(), "benchmark ", spec.abbrev,
                             ": invalid GPU configuration: ",
                             st.message());
    }
    const Scene scene(spec, cfg.screenWidth, cfg.screenHeight);
    return runBenchmark(scene, cfg, frames, first_frame);
}

Result<double>
memoryTimeFraction(const BenchmarkSpec &spec, const GpuConfig &cfg,
                   std::uint32_t frames)
{
    GpuConfig ideal = cfg;
    ideal.idealMemory = true;
    const Result<RunResult> real = runBenchmark(spec, cfg, frames);
    if (!real.isOk())
        return real.status();
    const Result<RunResult> perfect = runBenchmark(spec, ideal, frames);
    if (!perfect.isOk())
        return perfect.status();
    const auto real_cycles = static_cast<double>(real->totalCycles());
    const auto ideal_cycles =
        static_cast<double>(perfect->totalCycles());
    if (real_cycles <= 0.0)
        return 0.0;
    return std::max(0.0, 1.0 - ideal_cycles / real_cycles);
}

double
speedup(const RunResult &a, const RunResult &b)
{
    const auto b_cycles = static_cast<double>(b.totalCycles());
    return b_cycles == 0.0
        ? 0.0
        : static_cast<double>(a.totalCycles()) / b_cycles;
}

double
geomean(const std::vector<double> &values)
{
    // Non-positive entries (a zero-cycle run, a failed data point) are
    // skipped with a warning instead of aborting: one bad sample should
    // degrade the average, not kill a whole results table.
    std::size_t used = 0;
    double log_sum = 0.0;
    for (const double v : values) {
        if (!(v > 0.0)) {
            warn("geomean: skipping non-positive value ", v);
            continue;
        }
        log_sum += std::log(v);
        ++used;
    }
    if (used == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(used));
}

} // namespace libra
