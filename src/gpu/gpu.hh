/**
 * @file
 * The complete modeled GPU: geometry pipeline, tiling engine, one or
 * more Raster Units, the cache hierarchy and DRAM, the LIBRA tile
 * scheduler and the per-frame statistics plumbing (paper Fig. 3/Fig. 5).
 */

#ifndef LIBRA_GPU_GPU_HH
#define LIBRA_GPU_GPU_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "cache/mem_system.hh"
#include "check/invariant_checker.hh"
#include "common/status.hh"
#include "core/temperature_table.hh"
#include "core/tile_scheduler.hh"
#include "dram/dram.hh"
#include "energy/energy_model.hh"
#include "gpu/geometry/geometry_pipeline.hh"
#include "gpu/gpu_config.hh"
#include "gpu/raster/raster_unit.hh"
#include "gpu/shard_engine.hh"
#include "gpu/tiling/tile_fetcher.hh"
#include "gpu/tiling/tile_grid.hh"
#include "sim/event_queue.hh"
#include "sim/trace_sink.hh"
#include "workload/scene.hh"

namespace libra
{

class SnapshotWriter;
class SnapshotReader;

/** Everything measured while rendering one frame. */
struct FrameStats
{
    std::uint32_t frameIndex = 0;
    Tick totalCycles = 0;
    Tick geomCycles = 0;
    Tick rasterCycles = 0;

    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramActivates = 0;
    double avgDramReadLatency = 0.0;

    double textureHitRatio = 1.0;
    double avgTextureLatency = 0.0;
    std::uint64_t textureRequests = 0;
    std::uint64_t textureMisses = 0;
    std::uint64_t textureL1Accesses = 0; //!< texture-L1 hits + misses
    double l2HitRatio = 1.0;
    double replicationRatio = 0.0;

    std::uint64_t instructions = 0;
    std::uint64_t fragments = 0;
    std::uint64_t warps = 0;
    std::uint64_t quads = 0;

    /** Per-tile DRAM accesses / instructions (temperature inputs). */
    std::vector<std::uint64_t> tileDram;
    std::vector<std::uint64_t> tileInstr;

    /** DRAM requests per interval of the raster phase (Fig. 7). */
    std::vector<std::uint32_t> dramTimeline;
    std::uint32_t dramTimelineInterval = 5000;

    /** Per-RU cycle attribution for this frame, indexed by RuPhase.
     *  The six phases of each unit sum exactly to totalCycles. */
    std::vector<std::array<std::uint64_t, kNumRuPhases>> ruPhases;

    EnergyBreakdown energy;

    /**
     * Scheduler decisions taken for this frame, copied verbatim from
     * the policy layer's FramePlan — the plan is rebuilt by value
     * every frame, so a policy that did no ranking reports
     * rankingCycles == 0 here by construction (no stale attribution).
     */
    bool temperatureOrder = false;
    std::uint32_t supertileSize = 1;
    std::uint64_t rankingCycles = 0;

    /** Rendering Elimination (only with renderingElimination): tiles
     *  skipped this frame, and which ones (1 = skipped). */
    std::uint64_t reTilesSkipped = 0;
    std::vector<std::uint8_t> reSkippedTiles;

    /** Final per-pixel hash image (only with captureImage). */
    std::vector<std::uint64_t> image;
};

class Gpu
{
  public:
    explicit Gpu(const GpuConfig &cfg);
    ~Gpu();

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /**
     * Render one frame; the pool must own every referenced texture.
     *
     * Library entry point with recoverable errors: if the frame
     * exceeds GpuConfig::watchdog limits, or the event loop deadlocks,
     * returns a WatchdogExpired / NoProgress Status whose message
     * carries a diagnostic dump (current tiles, RU occupancy,
     * outstanding memory requests). A wedged frame leaves simulated
     * state inconsistent, so after such an error every further call
     * fails with FailedPrecondition — callers rebuild the Gpu (see
     * runBenchmark, which skips the frame and continues the sweep).
     */
    Result<FrameStats> tryRenderFrame(const FrameData &frame,
                                      const TexturePool &pool);

    /**
     * Convenience wrapper over tryRenderFrame() that treats any failure
     * as a simulator bug (panic). With the watchdog disabled — the
     * default — this is exactly the historical behaviour.
     */
    FrameStats renderFrame(const FrameData &frame,
                           const TexturePool &pool);

    const GpuConfig &cfg() const { return config; }
    const TileGrid &tileGrid() const { return grid; }
    EventQueue &eventQueue() { return queue; }
    Dram &dram() { return *dramModel; }
    TileScheduler &scheduler() { return *tileSched; }

    /** Events executed across every queue of this simulation: the
     *  shared queue plus (sharded engine only) all RU shards. */
    std::uint64_t
    eventsExecuted() const
    {
        return queue.eventsExecuted()
            + (engine ? engine->shardEventsExecuted() : 0);
    }

    /** The sharded engine, or null under the sequential engine (test
     *  hook: the parallel-sim suite asserts its window invariants). */
    const ShardEngine *shardEngine() const { return engine.get(); }

    /** Cumulative (run-lifetime) counters of every component. */
    const StatGroup &stats() const { return statGroup; }

    /**
     * Attach a trace sink (null to detach). The GPU creates one lane
     * per component ("gpu", "dram", "ru<N>") and emits frame/geometry/
     * raster spans, per-tile async spans and the DRAM-bandwidth counter
     * timeline into it. The sink must outlive the Gpu.
     */
    void setTraceSink(TraceSink *sink);

    /** Texture-L1 aggregate hit ratio since construction. */
    double textureHitRatio() const;

    /** True after a watchdog/deadlock error wedged this instance. */
    bool wedged() const { return isWedged; }

    /**
     * One-line-per-component snapshot of simulation state: tick, tiles
     * flushed, per-RU occupancy (current tile, FIFO fill, pending
     * warps), event-queue depth and outstanding DRAM requests. Dumped
     * into the error message when the watchdog fires.
     */
    std::string diagnosticState() const;

    /**
     * Test hook: the shared L2, for fault injection in the invariant
     * tests (e.g. Cache::testDropHitAccounting breaks the conservation
     * law that checkInvariants must then report).
     */
    Cache &testL2Cache() { return *l2; }

    /**
     * Serialize every piece of persistent cross-frame machine state —
     * event-queue clocks (and shard-engine window state), cache tag
     * arrays and port/LRU clocks, DRAM bank/bus state, the replication
     * tracker, the adaptive-controller window, per-RU/core pacing
     * state, transaction-elimination signatures, frame feedback and
     * the full counter tree — as the machine sections of a
     * `libra.snapshot/1` image (src/check/snapshot.hh). Must be called
     * at a frame boundary: asserts full quiescence (queues drained,
     * RUs idle, MSHRs empty, boundary links empty, not wedged).
     */
    void saveState(SnapshotWriter &w) const;

    /**
     * Restore what saveState() wrote onto a freshly constructed Gpu of
     * the *same* configuration (the caller checks configHash before
     * getting here). Returns CorruptData if the image disagrees with
     * this machine's shape; the Gpu must then be discarded.
     */
    Status loadState(SnapshotReader &r);

    EnergyParams energyParams; //!< tweakable before rendering

  private:
    struct RawTotals
    {
        std::uint64_t texHits = 0;      //!< includes coalesced requests
        std::uint64_t texMisses = 0;
        std::uint64_t texLatSum = 0;
        std::uint64_t texReqs = 0;
        std::uint64_t l1Accesses = 0;
        std::uint64_t l2Accesses = 0;
        std::uint64_t l2Hits = 0;
        std::uint64_t l2Misses = 0;
        std::uint64_t dramReads = 0;
        std::uint64_t dramWrites = 0;
        std::uint64_t dramActs = 0;
        std::uint64_t dramReadLatSum = 0;
        std::uint64_t quads = 0;
        std::uint64_t vertices = 0;
        std::uint64_t replInstalls = 0;
        std::uint64_t replReplicated = 0;
    };
    RawTotals collectTotals() const;

    GpuConfig config;
    TileGrid grid;
    EventQueue queue; //!< the only queue (sequential) or the shared
                      //!< L2/DRAM/scheduler shard (sharded engine)

    /** Sharded parallel engine (simThreads >= 1); null runs the
     *  historical sequential event loop. */
    std::unique_ptr<ShardEngine> engine;

    std::unique_ptr<Dram> dramModel;
    std::unique_ptr<IdealMemory> idealSink; //!< idealMemory mode
    std::unique_ptr<Cache> l2;
    std::unique_ptr<Cache> vertexCache;
    std::unique_ptr<Cache> tileCache;
    std::vector<std::unique_ptr<Cache>> texL1s;
    ReplicationTracker replTracker;

    std::unique_ptr<GeometryPipeline> geometry;
    std::vector<std::unique_ptr<RasterUnit>> rus;
    std::unique_ptr<TileScheduler> tileSched;
    std::unique_ptr<TileFetcher> fetcher;

    TemperatureTable tempTable;
    FrameFeedback feedback;

    /** Runs the src/check conservation laws at every frame boundary
     *  when GpuConfig::checkInvariants is set. */
    InvariantChecker invariantChecker;

    /** Conservation laws over the finished frame; Ok or an
     *  InvariantViolation listing every broken law. */
    Status checkFrameInvariants(const FrameStats &fs);

    // Per-frame collection state.
    bool rasterActive = false;
    Tick rasterStartTick = 0;
    std::uint32_t tilesFlushed = 0;
    std::vector<std::uint32_t> tileFlushCount; //!< per-tile, this frame
    std::uint64_t frameAttributedDram = 0; //!< tile-tagged DRAM accesses
    IntervalSampler dramSampler; //!< Fig. 7 bandwidth timeline
    std::vector<std::uint64_t> tileInstr;
    std::vector<std::uint64_t> tileSignatures; //!< transaction elim.

    // Rendering Elimination (GpuConfig::renderingElimination). The
    // input-signature stage runs functionally on the coordinator right
    // after binning; skip decisions are taken at scheduler handout on
    // the shared event domain, so the sharded engine needs no new
    // event ownership. The weak hash drives the skip; the strong hash
    // (different basis) only detects weak-hash aliasing, counted as
    // re.signature_collisions.
    std::vector<std::uint64_t> reWeakSig;   //!< previous frame, weak
    std::vector<std::uint64_t> reStrongSig; //!< previous frame, strong
    std::vector<std::uint8_t> reSkipTile;   //!< this frame's skip set
    bool reSigValid = false; //!< false until one frame is hashed
    std::vector<std::uint32_t> tileSkipCount; //!< per-tile, this frame
    std::uint64_t frameTilesSkipped = 0;
    Counter reTilesSkipped;
    Counter reSignatureCollisions;
    StatGroup reStats{"re"};

    /** Hash this frame's binned tile lists and decide the skip set. */
    void computeReSignatures(const BinnedFrame &binned);

    /** Coverage accounting for a tile discarded before rasterization. */
    void applyTileSkipped(TileId tile);

    std::vector<std::uint64_t> image;
    std::uint64_t frameInstructions = 0;
    std::uint64_t frameFragments = 0;
    std::uint64_t frameWarps = 0;
    std::uint32_t framesRendered = 0;
    bool isWedged = false; //!< a watchdog/deadlock error poisoned state

    /** Mark the GPU wedged and wrap @p st's message with diagnostics. */
    Status wedge(const Status &st, const char *phase);

    /** Shared-state accounting for one finished tile; runs on the
     *  coordinator in both engines. */
    void applyTileDone(const TileDoneInfo &info);

    /** Windowed raster phase + drain of the sharded engine (the
     *  sequential equivalent lives inline in tryRenderFrame). */
    Status runShardedRaster(Watchdog &watchdog);

    // Trace wiring (all null / zero when no sink is attached).
    TraceSink *traceSink = nullptr;
    TraceSink::Lane *gpuLane = nullptr;
    TraceSink::Lane *dramLane = nullptr;
    std::uint32_t nameFrame = 0;
    std::uint32_t nameGeometry = 0;
    std::uint32_t nameRaster = 0;
    std::uint32_t nameDramRequests = 0;

    StatGroup statGroup{"gpu"};
};

} // namespace libra

#endif // LIBRA_GPU_GPU_HH
