/**
 * @file
 * Sharded discrete-event engine: conservative parallel windows over
 * per-Raster-Unit event-queue shards (DESIGN.md §8).
 *
 * The machine is partitioned along the paper's own independence
 * argument: Raster Units own disjoint tiles and touch each other only
 * through the shared L2/DRAM/scheduler domain. Each RU (its cores,
 * private texture L1s, rasterizer, blender and flush DMA) runs on its
 * own EventQueue shard; everything else (geometry, L2, vertex/tile
 * caches, DRAM, tile scheduler and fetcher) stays on the shared queue.
 *
 * Execution alternates over conservative time windows of one lookahead
 * L = GpuConfig::shardLookahead() (the minimum L2 round trip):
 *
 *   Phase A  every RU shard runs its events in [W, W+L) on a worker
 *            lane, buffering anything that crosses the boundary into
 *            its outboxes (no shared state is touched);
 *   barrier  the coordinator merges all outboxes in fixed (shard,
 *            sequence) order and injects them into the shared queue at
 *            their original send ticks;
 *   Phase B  the shared domain runs [W, W+L); completions that cross
 *            back are buffered with a delivery tick of (completion
 *            tick + L);
 *   barrier  the coordinator schedules the buffered deliveries onto
 *            the RU shards, where they execute in a later window.
 *
 * Safety: a shared-domain completion at tick c >= W delivers at
 * c + L >= W + L — never inside the window that produced it, so RU
 * shards running [W, W+L) in isolation can miss nothing (the
 * `earlyDeliveries` stat counts violations of exactly this invariant;
 * it must stay 0). RU→shared traffic is injected at its original send
 * tick, which is safe because the shared domain only starts the window
 * after the merge.
 *
 * Determinism: every buffer is appended by exactly one thread and
 * merged at a barrier in (shard index, append order), so the event
 * order seen by any queue is a pure function of the configuration —
 * independent of the thread count and of OS scheduling. simThreads = 1
 * runs the identical windowed algorithm inline; byte-identical
 * counters, reports and traces for 1 vs N threads is the contract the
 * parallel-sim test suite pins down.
 */

#ifndef LIBRA_GPU_SHARD_ENGINE_HH
#define LIBRA_GPU_SHARD_ENGINE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cache/mem_system.hh"
#include "gpu/raster/raster_unit.hh"
#include "sim/event_queue.hh"
#include "sim/sim_thread_pool.hh"

namespace libra
{

class ShardEngine;

/**
 * Shard-crossing MemSink standing between a shard-resident producer (a
 * texture L1's fill path, a Raster Unit's flush DMA) and a
 * shared-domain sink (the L2, DRAM). Phase A buffers requests; the
 * original completion callback parks in a slot table and the forwarded
 * request carries only {link, slot}, so the shared domain completes it
 * without touching shard state.
 */
class ShardMemLink : public MemSink
{
  public:
    ShardMemLink(ShardEngine &eng, std::uint32_t shard_index,
                 EventQueue &shard_queue)
        : engine(eng), shard(shard_index), shardQ(shard_queue)
    {}

    void setDownstream(MemSink &sink) { downstream = &sink; }

    /** Shard side (Phase A): buffer the request in the outbox. */
    void access(MemReq req) override;

  private:
    friend class ShardEngine;

    struct Outgoing
    {
        Tick sentAt;
        MemReq req;
    };

    struct Completion
    {
        std::uint32_t slot;
        Tick deliverAt;
    };

    /** Shared side (Phase B): park the completion for delivery. */
    void complete(std::uint32_t slot, Tick when);

    /** Shard side (a later window): run the original callback. */
    void deliver(std::uint32_t slot);

    ShardEngine &engine;
    const std::uint32_t shard;
    EventQueue &shardQ;
    MemSink *downstream = nullptr;

    // Written by the owning shard during Phase A, drained by the
    // coordinator at the barrier.
    std::vector<Outgoing> outbox;

    // Slot table: written/freed by the shard, only the index crosses.
    std::vector<MemCallback> slots;
    std::vector<std::uint32_t> freeSlots;

    // Written by the shared domain during Phase B, drained by the
    // coordinator before the next window.
    std::vector<Completion> inbox;
};

/**
 * Shared-domain stand-in for a Raster Unit's input FIFO. The Tile
 * Fetcher pushes into this link; work is delivered to the real unit one
 * lookahead later. Backpressure is credit-based: the link starts with
 * fifoDepth credits, a push consumes one and the unit returns one per
 * FIFO pop, so in-flight work plus FIFO occupancy can never exceed the
 * modeled depth and a delivery can never hit a full FIFO.
 */
class ShardRasterLink : public RasterSink
{
  public:
    ShardRasterLink(ShardEngine &eng, std::uint32_t shard_index,
                    EventQueue &shard_queue, std::uint32_t fifo_depth)
        : engine(eng), shard(shard_index), shardQ(shard_queue),
          credits(fifo_depth), maxCredits(fifo_depth)
    {}

    void setTarget(RasterSink &sink) { target = &sink; }

    // Shared side (the fetcher's view of the FIFO).
    bool canPush() const override { return credits > 0; }
    void push(const RasterWork &work) override;

    /** Shard side: one FIFO slot freed (RasterUnit::onSpaceFreed). */
    void returnCredit();

  private:
    friend class ShardEngine;

    struct PendingPush
    {
        Tick sentAt;
        RasterWork work;
    };

    /** Shared side: credit arrives at its original tick. */
    void applyCredit();

    /** Shard side: hand the oldest delivered entry to the real FIFO. */
    void deliverFront();

    ShardEngine &engine;
    const std::uint32_t shard;
    EventQueue &shardQ;
    RasterSink *target = nullptr;

    std::uint32_t credits;
    const std::uint32_t maxCredits; //!< full-FIFO credit level (depth)
    std::vector<PendingPush> pushBuf; //!< shared-side, Phase B
    std::deque<RasterWork> inFlight;  //!< delivery-scheduled entries
    std::vector<Tick> creditBuf;      //!< shard-side, Phase A
};

class ShardEngine
{
  public:
    /**
     * @param shared_queue the L2/DRAM/scheduler domain's queue (owned
     *        by the Gpu).
     * @param shard_count one shard per Raster Unit.
     * @param threads     worker lanes for Phase A (>= 1; 1 = inline).
     * @param fifo_depth  per-RU FIFO depth (raster-link credits).
     */
    ShardEngine(EventQueue &shared_queue, std::uint32_t shard_count,
                std::uint32_t threads, Tick la,
                std::uint32_t fifo_depth);
    ~ShardEngine();

    ShardEngine(const ShardEngine &) = delete;
    ShardEngine &operator=(const ShardEngine &) = delete;

    EventQueue &shardQueue(std::uint32_t s) { return *queues[s]; }
    ShardMemLink &texLink(std::uint32_t s) { return *texLinks[s]; }
    ShardMemLink &fbLink(std::uint32_t s) { return *fbLinks[s]; }
    ShardRasterLink &rasterLink(std::uint32_t s)
    {
        return *rasterLinks[s];
    }

    /** Wire every shard's links to the shared-domain sinks. */
    void setDownstreams(MemSink &tex_sink, MemSink &fb_sink);

    /**
     * Applied by the coordinator, in (shard, sequence) order, for every
     * tile-done event buffered during Phase A — the Gpu installs its
     * (single-threaded) accounting body here.
     */
    std::function<void(const TileDoneInfo &)> applyTileDone;

    /** Replication events buffered per shard replay into this tracker
     *  at the barrier (null disables). */
    ReplicationTracker *replTracker = nullptr;

    // --- Shard-side buffering hooks ------------------------------------
    void bufferTileDone(std::uint32_t shard, const TileDoneInfo &info);
    void bufferReplEvent(std::uint32_t shard, Addr line, bool install);

    // --- Frame orchestration (coordinator only) ------------------------
    /** Align every queue (shards and shared) at a frame boundary:
     *  advances each clock to the global maximum and returns it. */
    Tick alignClocks();

    /** True while any queue holds a pending event. */
    bool anyPending() const;

    /**
     * Run one conservative window at the earliest pending tick: Phase A
     * on the worker lanes, merge, Phase B, deliveries. Requires
     * anyPending().
     */
    void runWindow();

    /** Global maximum of all queue clocks. */
    Tick maxNow() const;

    /** Events executed by the RU shards (the shared queue keeps its
     *  own count). */
    std::uint64_t shardEventsExecuted() const;

    /** Pending events across the RU shards (diagnostics). */
    std::size_t shardPendingEvents() const;

    std::uint32_t shardCount() const
    {
        return static_cast<std::uint32_t>(queues.size());
    }

    Tick lookahead() const { return la; }

    struct Stats
    {
        std::uint64_t windows = 0;         //!< conservative windows run
        std::uint64_t parallelWindows = 0; //!< >= 2 shards active
        std::uint64_t crossMessages = 0;   //!< boundary crossings
        std::uint64_t earlyDeliveries = 0; //!< lookahead violations (0!)
    };
    const Stats &stats() const { return engineStats; }

    /**
     * Serialize persistent engine state (per-shard queue clocks, window
     * end, window statistics) for a frame-boundary snapshot. Asserts
     * full quiescence: every link buffer empty, every slot free, every
     * raster link holding its full credit level.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restore what saveState() wrote (shard count must match). */
    void loadState(SnapshotReader &r);

  private:
    friend class ShardMemLink;
    friend class ShardRasterLink;

    struct TileDoneRecord
    {
        TileDoneInfo info;
        std::vector<std::uint64_t> color;
        bool hasColor = false;
    };

    struct ReplEvent
    {
        Addr line;
        bool install;
    };

    /** Deferred RU→shared request (EventCallback can't hold a MemReq,
     *  so injected events reference this per-window list by index). */
    struct Inject
    {
        MemSink *sink;
        MemReq req;
    };
    void runInject(std::size_t index);

    void mergeShardOutput(std::uint32_t s);
    void deliverSharedOutput(std::uint32_t s);

    EventQueue &shared;
    const Tick la;
    Tick windowEnd = 0; //!< exclusive end of the window in flight

    std::vector<std::unique_ptr<EventQueue>> queues;
    std::vector<std::unique_ptr<ShardMemLink>> texLinks;
    std::vector<std::unique_ptr<ShardMemLink>> fbLinks;
    std::vector<std::unique_ptr<ShardRasterLink>> rasterLinks;

    std::vector<std::vector<TileDoneRecord>> tileDone; //!< per shard
    std::vector<std::vector<ReplEvent>> replEvents;    //!< per shard

    std::vector<Inject> injects;           //!< valid for one window
    std::vector<std::uint32_t> activeList; //!< Phase A scratch

    std::unique_ptr<SimThreadPool> pool; //!< null when threads == 1

    Stats engineStats;
};

} // namespace libra

#endif // LIBRA_GPU_SHARD_ENGINE_HH
