/**
 * @file
 * High-level harness: run a benchmark for N frames on a GPU
 * configuration and aggregate the per-frame statistics. This is the
 * entry point the examples and all the bench binaries share.
 */

#ifndef LIBRA_GPU_RUNNER_HH
#define LIBRA_GPU_RUNNER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hh"
#include "gpu/gpu.hh"
#include "gpu/gpu_config.hh"
#include "sim/trace_sink.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

namespace libra
{

/** Aggregated result of one (benchmark, config) run. */
struct RunResult
{
    std::string benchmark;
    GpuConfig config;
    std::vector<FrameStats> frames;

    /**
     * Frames the watchdog gave up on (absolute frame indices). Empty
     * unless GpuConfig::watchdog is armed and fired; skipped frames do
     * not contribute to the aggregates below.
     */
    std::vector<std::uint32_t> skippedFrames;

    /**
     * Full cumulative counter dump of the run ("gpu.ru0.phase_shade"
     * → cycles, ...). Sorted by name; identical simulations produce
     * identical dumps, which is what the determinism suite locks down.
     * When the run rebuilt the GPU mid-sweep (watchdog), the dumps of
     * every instance are summed entrywise, so counters accumulated
     * before a rebuild — including the skipped frame's partial work —
     * are never lost.
     */
    std::map<std::string, std::uint64_t> counters;

    /** Event timeline; non-null iff GpuConfig::traceEvents was set. */
    std::shared_ptr<TraceSink> trace;

    std::uint64_t totalCycles() const;
    std::uint64_t totalRasterCycles() const;
    std::uint64_t totalGeomCycles() const;
    std::uint64_t dramAccesses() const;
    std::uint64_t textureRequests() const;
    double avgTextureLatency() const;   //!< request-weighted
    double textureHitRatio() const;     //!< over all frames
    double avgDramReadLatency() const;  //!< read-weighted
    double totalEnergyMj() const;
    double avgReplicationRatio() const;

    /** Frames per second at @p clock_hz (Table I: 800 MHz). */
    double fps(double clock_hz = 800e6) const;
};

/**
 * Checkpointing directives for one runBenchmark() call. All defaults
 * off: the run is a plain cold run. The restore contract is byte
 * identity — a run restored at frame F finishes with counter dumps,
 * reports and Chrome traces identical to the uninterrupted run — and
 * every restore failure (missing file, corrupt image, key mismatch)
 * degrades to a cold run with a warning, never an error.
 */
struct CheckpointPlan
{
    /** Snapshot directory (created on demand); empty disables both
     *  writing and dir-based restore. */
    std::string dir;

    /** Write a snapshot into @ref dir every N finished frames; 0
     *  writes none. */
    std::uint32_t every = 0;

    /** Restore from the freshest usable snapshot in @ref dir (matching
     *  config hash, scene hash, code version and first frame, with
     *  framesDone <= the requested frame count). */
    bool restore = false;

    /**
     * In-memory warm-start image (sweep warm-prefix forking): restore
     * from these bytes instead of @ref dir. The image may come from a
     * config differing only in the adaptive thresholds — the header's
     * warmPrefixHash proves the prefix frames were byte-identical.
     */
    std::shared_ptr<const std::vector<std::uint8_t>> warmStart;

    /** When set, capture a snapshot image into *captureAfter once
     *  captureAfterFrames frames have finished (warm-prefix record). */
    std::shared_ptr<std::vector<std::uint8_t>> captureAfter;
    std::uint32_t captureAfterFrames = 0;

    bool
    enabled() const
    {
        return !dir.empty() || warmStart != nullptr
            || captureAfter != nullptr;
    }
};

/**
 * Render @p frames frames of @p spec under @p cfg.
 *
 * Validates @p cfg first (InvalidArgument on a bad configuration). If
 * the per-frame watchdog (GpuConfig::watchdog) fires, the wedged frame
 * is recorded in RunResult::skippedFrames, the GPU is rebuilt and the
 * sweep continues with the next frame — a corrupt or pathological
 * frame degrades one data point, not the whole batch.
 */
Result<RunResult> runBenchmark(const BenchmarkSpec &spec,
                               const GpuConfig &cfg,
                               std::uint32_t frames,
                               std::uint32_t first_frame = 0);

/**
 * Same, over an already-built scene. @p scene must match the
 * configuration's screen size; it is only read, so several runs (e.g.
 * the configs of one sweep, possibly on different threads) can share
 * one Scene instead of regenerating geometry and textures per config.
 */
Result<RunResult> runBenchmark(const Scene &scene, const GpuConfig &cfg,
                               std::uint32_t frames,
                               std::uint32_t first_frame = 0);

/** Same, under a checkpoint plan (snapshot writing and/or restore). */
Result<RunResult> runBenchmark(const Scene &scene, const GpuConfig &cfg,
                               std::uint32_t frames,
                               std::uint32_t first_frame,
                               const CheckpointPlan &checkpoint);

/**
 * Fraction of execution time attributable to memory: 1 - ideal/real,
 * where "ideal" re-runs the same frames with every access hitting in L1
 * — the Fig. 6a methodology. The paper calls a benchmark
 * memory-intensive when this is >= 0.25.
 */
Result<double> memoryTimeFraction(const BenchmarkSpec &spec,
                                  const GpuConfig &cfg,
                                  std::uint32_t frames);

/** speedup of b over a: cycles(a)/cycles(b). */
double speedup(const RunResult &a, const RunResult &b);

/** Geometric mean of a positive series (paper-style averages). */
double geomean(const std::vector<double> &values);

} // namespace libra

#endif // LIBRA_GPU_RUNNER_HH
