/**
 * @file
 * Named registry of scheduling/pipeline policies.
 *
 * A registry entry is a *mechanism preset* — the scheduling policy
 * (traversal/ranking, core/scheduling_policy.hh) plus the pipeline
 * mechanisms that compose with it (today: Rendering Elimination) —
 * applied onto an existing GpuConfig without touching its machine
 * shape (Raster Units, cores, caches). The registry makes mechanisms
 * enumerable by name, so:
 *
 *  - every bench accepts `--policy <name>` (bench/bench_common.hh);
 *  - fuzzGpuConfig draws uniformly over the registry, so the
 *    conservation laws sweep every mechanism (src/check);
 *  - tests/test_policy_conformance.cc runs the full determinism /
 *    invariant / snapshot contract against each entry by iterating
 *    this list — a new mechanism registered here inherits the whole
 *    contract with no new test code (DESIGN.md §13).
 */

#ifndef LIBRA_GPU_POLICY_REGISTRY_HH
#define LIBRA_GPU_POLICY_REGISTRY_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"
#include "gpu/gpu_config.hh"

namespace libra
{

/** One named mechanism preset. */
struct PolicyInfo
{
    /** CLI name (`--policy <name>`, farm config specs). */
    const char *name;

    /** One-line description for help text and error messages. */
    const char *summary;

    /** Scheduling mechanism this entry selects. */
    SchedulerPolicy sched;

    /** Whether Rendering Elimination is enabled. */
    bool renderingElimination;
};

/** Every registered policy, in stable registration order. */
const std::vector<PolicyInfo> &policyRegistry();

/** Registry entry named @p name, or null when unknown. */
const PolicyInfo *findPolicy(std::string_view name);

/**
 * Apply the policy named @p name onto @p cfg (scheduling policy and
 * pipeline-mechanism flags only; machine shape untouched). Unknown
 * names return InvalidArgument listing the registered names.
 */
Status applyPolicy(GpuConfig &cfg, std::string_view name);

/** Comma-separated registered names (for help/error text). */
std::string policyNames();

/**
 * Reverse lookup: the registry name matching @p cfg's mechanism
 * fields, or "?" when the combination is not a registered preset.
 */
const char *policyNameFor(const GpuConfig &cfg);

} // namespace libra

#endif // LIBRA_GPU_POLICY_REGISTRY_HH
