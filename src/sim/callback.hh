/**
 * @file
 * Small-buffer-optimized, move-only callable — the event loop's
 * replacement for std::function.
 *
 * A simulated FHD frame schedules hundreds of thousands of events, and
 * with std::function every capture beyond the implementation's tiny
 * internal buffer (16 bytes on libstdc++) is a heap allocation on the
 * hottest path of the whole simulator. SmallCallback stores the callable
 * inline, always: there is no heap fallback, so a capture that does not
 * fit is a *compile-time* error at the schedule site instead of a silent
 * allocation. Every in-tree schedule site is audited to fit (see the
 * capacity notes on EventCallback / MemCallback below).
 *
 * Semantics:
 *  - move-only (like the unique_function proposals); moving transfers
 *    the callable, the moved-from callback becomes empty.
 *  - the wrapped callable must be nothrow-move-constructible (events
 *    relocate when the event-heap vector grows).
 *  - invoking an empty callback is a simulator bug (asserted).
 */

#ifndef LIBRA_SIM_CALLBACK_HH
#define LIBRA_SIM_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/log.hh"

namespace libra
{

template <typename Signature, std::size_t Capacity>
class SmallCallback;

template <typename R, typename... Args, std::size_t Capacity>
class SmallCallback<R(Args...), Capacity>
{
  public:
    SmallCallback() = default;
    SmallCallback(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallCallback>
                  && !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
    SmallCallback(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "capture too large for this SmallCallback: shrink "
                      "the lambda's capture list (move shared state into "
                      "one heap/shared_ptr block) or raise the capacity");
        static_assert(alignof(Fn) <= kAlign,
                      "over-aligned captures are not supported");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "captures must be nothrow-movable (events relocate "
                      "when the event heap grows)");
        static_assert(std::is_invocable_r_v<R, Fn &, Args...>,
                      "callable signature mismatch");
        ::new (static_cast<void *>(storage)) Fn(std::forward<F>(fn));
        ops = &opsFor<Fn>;
    }

    SmallCallback(SmallCallback &&other) noexcept
        : ops(other.ops)
    {
        if (ops) {
            ops->relocate(other.storage, storage);
            other.ops = nullptr;
        }
    }

    SmallCallback &
    operator=(SmallCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops = other.ops;
            if (ops) {
                ops->relocate(other.storage, storage);
                other.ops = nullptr;
            }
        }
        return *this;
    }

    SmallCallback(const SmallCallback &) = delete;
    SmallCallback &operator=(const SmallCallback &) = delete;

    ~SmallCallback() { reset(); }

    explicit operator bool() const { return ops != nullptr; }

    R
    operator()(Args... args)
    {
        libra_assert(ops, "invoking an empty SmallCallback");
        return ops->invoke(storage, std::forward<Args>(args)...);
    }

    /** Inline capture capacity, in bytes. */
    static constexpr std::size_t capacity() { return Capacity; }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args...);
        void (*relocate)(void *from, void *to) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static constexpr Ops opsFor{
        [](void *obj, Args... args) -> R {
            return (*static_cast<Fn *>(obj))(std::forward<Args>(args)...);
        },
        [](void *from, void *to) noexcept {
            Fn *src = static_cast<Fn *>(from);
            ::new (to) Fn(std::move(*src));
            src->~Fn();
        },
        [](void *obj) noexcept { static_cast<Fn *>(obj)->~Fn(); },
    };

    void
    reset()
    {
        if (ops) {
            ops->destroy(storage);
            ops = nullptr;
        }
    }

    // Pointer alignment, not max_align_t: a 16-byte-aligned buffer
    // would round a nested callback's size up and break the exact
    // capacity math of the wrap sites (MemCallback + Tick == 40).
    static constexpr std::size_t kAlign = alignof(void *);

    alignas(kAlign) unsigned char storage[Capacity];
    const Ops *ops = nullptr;
};

} // namespace libra

#endif // LIBRA_SIM_CALLBACK_HH
