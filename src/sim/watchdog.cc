#include "sim/watchdog.hh"

namespace libra
{

Status
Watchdog::check(Tick now) const
{
    if (config.cycleBudget != 0 && now - startTick > config.cycleBudget) {
        return Status::error(ErrorCode::WatchdogExpired,
                             "cycle budget exceeded: ", now - startTick,
                             " cycles elapsed, budget ",
                             config.cycleBudget);
    }
    if (config.noProgressCycles != 0
        && now - lastProgressTick > config.noProgressCycles) {
        return Status::error(ErrorCode::NoProgress,
                             "no progress for ", now - lastProgressTick,
                             " cycles (limit ", config.noProgressCycles,
                             "), last progress at tick ",
                             lastProgressTick);
    }
    if (config.cancel && --cancelPollCountdown == 0) {
        cancelPollCountdown = kCancelPollInterval;
        if (config.cancel->expired()) {
            return Status::error(
                ErrorCode::DeadlineExceeded,
                config.cancel->wasCancelled()
                    ? "run cancelled"
                    : "wall-clock deadline exceeded",
                " at tick ", now);
        }
    }
    return Status::ok();
}

} // namespace libra
