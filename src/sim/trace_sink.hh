/**
 * @file
 * Cycle-attribution trace sink: timeline events and interval samples.
 *
 * Components record begin/end spans, async (overlapping) spans, counter
 * samples and instants into per-component Lanes. A Lane is written by
 * exactly one thread *at a time*, so appends are plain vector pushes —
 * no locks, no atomics; only Lane *creation* and name interning take a
 * mutex, and both happen during wiring, never on the hot path. Under
 * the sequential engine the single writer is trivially the simulation
 * thread. Under the sharded engine (DESIGN.md §8) the discipline still
 * holds structurally: each "ru<N>" lane is written only by whichever
 * pool lane executes shard N's events, exactly one thread per window,
 * with the window barriers' release/acquire edges ordering appends
 * across windows; the "gpu"/"dram" lanes belong to the coordinator.
 *
 * The sink exports Chrome `trace_events` JSON loadable in Perfetto or
 * chrome://tracing (one process, one "thread" per Lane, ts = simulated
 * ticks). Export is deterministic: events are ordered by (tick, lane,
 * append order) — and under the sharded engine every lane's append
 * order is itself a pure function of the config — so identical
 * simulations produce byte-identical traces regardless of host, sweep
 * worker count or simulation thread count
 * (tests/test_parallel_sim.cc pins the 1-vs-4-thread trace equality).
 *
 * Cost model:
 *  - compiled out: build with -DLIBRA_TRACING_ENABLED=0 (cmake option
 *    LIBRA_TRACING=OFF) and every LIBRA_TRACE_* macro expands to
 *    nothing — zero code, zero branches;
 *  - compiled in, disabled: the macros test one pointer and skip;
 *  - enabled: one bounds-checked vector push_back per event.
 *
 * IntervalSampler (DRAM-bandwidth timelines, Fig. 7) is part of this
 * subsystem but NOT behind the macro: its samples feed FrameStats and
 * the benches even in tracing-off builds.
 */

#ifndef LIBRA_SIM_TRACE_SINK_HH
#define LIBRA_SIM_TRACE_SINK_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"

#ifndef LIBRA_TRACING_ENABLED
#define LIBRA_TRACING_ENABLED 1
#endif

namespace libra
{

class SnapshotWriter;
class SnapshotReader;

class TraceSink
{
  public:
    /** Event flavor, mapping 1:1 onto Chrome trace-event phases. */
    enum class Ev : std::uint8_t
    {
        Begin,      //!< 'B' — synchronous span start (must nest)
        End,        //!< 'E' — synchronous span end
        AsyncBegin, //!< 'b' — overlapping span start, keyed by id
        AsyncEnd,   //!< 'e' — overlapping span end, keyed by id
        Counter,    //!< 'C' — sampled value
        Instant     //!< 'i' — point event
    };

    struct Event
    {
        Tick tick;
        std::uint32_t name;  //!< interned name id
        std::uint64_t value; //!< async id / counter value / span arg
        Ev type;
    };

    /** One component's event buffer; single-writer, lock-free. */
    class Lane
    {
      public:
        void
        begin(std::uint32_t name_id, Tick t, std::uint64_t arg = 0)
        {
            append(Event{t, name_id, arg, Ev::Begin});
        }
        void
        end(Tick t)
        {
            append(Event{t, 0, 0, Ev::End});
        }
        void
        asyncBegin(std::uint32_t name_id, std::uint64_t id, Tick t)
        {
            append(Event{t, name_id, id, Ev::AsyncBegin});
        }
        void
        asyncEnd(std::uint32_t name_id, std::uint64_t id, Tick t)
        {
            append(Event{t, name_id, id, Ev::AsyncEnd});
        }
        void
        counter(std::uint32_t name_id, Tick t, std::uint64_t v)
        {
            append(Event{t, name_id, v, Ev::Counter});
        }
        void
        instant(std::uint32_t name_id, Tick t, std::uint64_t arg = 0)
        {
            append(Event{t, name_id, arg, Ev::Instant});
        }

        const std::string &name() const { return laneName; }
        const std::vector<Event> &events() const { return buf; }

      private:
        friend class TraceSink;

        void
        append(const Event &e)
        {
            if (!*enabledFlag)
                return;
            buf.push_back(e);
        }

        std::string laneName;
        std::uint32_t tid = 0;
        const bool *enabledFlag = nullptr;
        std::vector<Event> buf;
    };

    TraceSink() = default;
    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /**
     * The lane named @p name, created on first request. Lanes are
     * stable for the sink's lifetime; callers cache the pointer at
     * wiring time. Creation is mutex-guarded (safe from concurrent
     * wiring); the returned Lane must only ever be written by one
     * thread at a time.
     */
    Lane &lane(const std::string &name);

    /** Intern @p name, returning its id (mutex-guarded; wire-up only). */
    std::uint32_t nameId(const std::string &name);

    /** Recording switch; a disabled sink drops events at append. */
    void setEnabled(bool on) { recording = on; }
    bool enabled() const { return recording; }

    /** Total events currently buffered across all lanes. */
    std::size_t eventCount() const;

    /**
     * Render the Chrome trace_events JSON document: a metadata record
     * naming each lane, then every event ordered by (tick, lane,
     * append order).
     */
    std::string chromeTraceJson() const;

    /** chromeTraceJson() to @p path; IoError on failure. */
    Status writeChromeTrace(const std::string &path) const;

    /**
     * Serialize interned names and every lane (name, tid order,
     * buffered events) for a frame-boundary snapshot.
     */
    void exportState(SnapshotWriter &w) const;

    /**
     * Recreate what exportState() wrote into this (empty, freshly
     * constructed) sink. Lanes come back in saved order, so later
     * lane()/nameId() calls during Gpu wiring find the existing
     * entries and ids stay stable.
     */
    void importState(SnapshotReader &r);

  private:
    mutable std::mutex mtx; //!< guards lanes/names *creation* only
    // deque-like stability via unique_ptr: Lane addresses survive
    // vector growth.
    std::vector<std::unique_ptr<Lane>> lanes;
    std::vector<std::string> names;
    bool recording = true;
};

/**
 * Fixed-width interval histogram of event ticks — the DRAM-bandwidth
 * timeline of paper Fig. 7. reset() pins the origin (e.g. the raster
 * phase start); record() buckets an event tick; samples() is the
 * per-interval count vector. flushTo() additionally emits the buckets
 * as Chrome counter events.
 */
class IntervalSampler
{
  public:
    void
    reset(Tick origin_tick, Tick interval_ticks)
    {
        origin = origin_tick;
        interval = interval_ticks < 1 ? 1 : interval_ticks;
        buckets.clear();
    }

    void
    record(Tick t, std::uint32_t n = 1)
    {
        if (t < origin)
            return;
        const auto b = static_cast<std::size_t>((t - origin) / interval);
        if (buckets.size() <= b)
            buckets.resize(b + 1, 0);
        buckets[b] += n;
    }

    const std::vector<std::uint32_t> &samples() const { return buckets; }
    Tick intervalTicks() const { return interval; }
    Tick originTick() const { return origin; }

    /** Emit one counter event per bucket into @p lane. */
    void
    flushTo(TraceSink::Lane &lane, std::uint32_t name_id) const
    {
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            lane.counter(name_id,
                         origin + static_cast<Tick>(i) * interval,
                         buckets[i]);
        }
    }

  private:
    Tick origin = 0;
    Tick interval = 5000;
    std::vector<std::uint32_t> buckets;
};

} // namespace libra

// Zero-cost instrumentation macros: compiled to nothing under
// LIBRA_TRACING_ENABLED=0, a single pointer test otherwise. @p lane is
// a TraceSink::Lane* that may be null.
#if LIBRA_TRACING_ENABLED
#define LIBRA_TRACE_BEGIN(lane, name_id, tick, arg)                    \
    do {                                                               \
        if (lane)                                                      \
            (lane)->begin((name_id), (tick), (arg));                   \
    } while (0)
#define LIBRA_TRACE_END(lane, tick)                                    \
    do {                                                               \
        if (lane)                                                      \
            (lane)->end(tick);                                         \
    } while (0)
#define LIBRA_TRACE_ASYNC_BEGIN(lane, name_id, id, tick)               \
    do {                                                               \
        if (lane)                                                      \
            (lane)->asyncBegin((name_id), (id), (tick));               \
    } while (0)
#define LIBRA_TRACE_ASYNC_END(lane, name_id, id, tick)                 \
    do {                                                               \
        if (lane)                                                      \
            (lane)->asyncEnd((name_id), (id), (tick));                 \
    } while (0)
#define LIBRA_TRACE_COUNTER(lane, name_id, tick, value)                \
    do {                                                               \
        if (lane)                                                      \
            (lane)->counter((name_id), (tick), (value));               \
    } while (0)
#else
#define LIBRA_TRACE_BEGIN(lane, name_id, tick, arg) do {} while (0)
#define LIBRA_TRACE_END(lane, tick) do {} while (0)
#define LIBRA_TRACE_ASYNC_BEGIN(lane, name_id, id, tick) do {} while (0)
#define LIBRA_TRACE_ASYNC_END(lane, name_id, id, tick) do {} while (0)
#define LIBRA_TRACE_COUNTER(lane, name_id, tick, value) do {} while (0)
#endif

#endif // LIBRA_SIM_TRACE_SINK_HH
