#include "sim/trace_sink.hh"

#include <algorithm>

#include "check/snapshot.hh"
#include "common/log.hh"
#include "trace/json.hh"

namespace libra
{

TraceSink::Lane &
TraceSink::lane(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    for (const auto &l : lanes) {
        if (l->laneName == name)
            return *l;
    }
    auto l = std::make_unique<Lane>();
    l->laneName = name;
    l->tid = static_cast<std::uint32_t>(lanes.size());
    l->enabledFlag = &recording;
    lanes.push_back(std::move(l));
    return *lanes.back();
}

std::uint32_t
TraceSink::nameId(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == name)
            return static_cast<std::uint32_t>(i);
    }
    names.push_back(name);
    return static_cast<std::uint32_t>(names.size() - 1);
}

std::size_t
TraceSink::eventCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::size_t total = 0;
    for (const auto &l : lanes)
        total += l->buf.size();
    return total;
}

std::string
TraceSink::chromeTraceJson() const
{
    std::lock_guard<std::mutex> lock(mtx);

    // Merge all lanes into (tick, lane, append-order) order. Stable by
    // construction: the key includes the within-lane index.
    struct Ref
    {
        Tick tick;
        std::uint32_t lane;
        std::size_t index;
    };
    std::vector<Ref> refs;
    std::size_t total = 0;
    for (const auto &l : lanes)
        total += l->buf.size();
    refs.reserve(total);
    for (std::uint32_t li = 0; li < lanes.size(); ++li) {
        const auto &buf = lanes[li]->buf;
        for (std::size_t i = 0; i < buf.size(); ++i)
            refs.push_back(Ref{buf[i].tick, li, i});
    }
    std::sort(refs.begin(), refs.end(),
              [](const Ref &a, const Ref &b) {
                  if (a.tick != b.tick)
                      return a.tick < b.tick;
                  if (a.lane != b.lane)
                      return a.lane < b.lane;
                  return a.index < b.index;
              });

    JsonWriter w;
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();

    // Metadata: name each lane's pseudo-thread.
    for (const auto &l : lanes) {
        w.beginObject();
        w.key("ph");
        w.value("M");
        w.key("name");
        w.value("thread_name");
        w.key("pid");
        w.value(std::uint64_t{0});
        w.key("tid");
        w.value(static_cast<std::uint64_t>(l->tid));
        w.key("args");
        w.beginObject();
        w.key("name");
        w.value(l->laneName);
        w.endObject();
        w.endObject();
    }

    auto name_of = [&](std::uint32_t id) -> const std::string & {
        libra_assert(id < names.size(), "unregistered trace name ", id);
        return names[id];
    };

    for (const Ref &ref : refs) {
        const Event &e = lanes[ref.lane]->buf[ref.index];
        w.beginObject();
        switch (e.type) {
          case Ev::Begin:
            w.key("ph");
            w.value("B");
            w.key("name");
            w.value(name_of(e.name));
            break;
          case Ev::End:
            w.key("ph");
            w.value("E");
            break;
          case Ev::AsyncBegin:
            w.key("ph");
            w.value("b");
            w.key("name");
            w.value(name_of(e.name));
            w.key("cat");
            w.value("libra");
            w.key("id");
            w.value(e.value);
            break;
          case Ev::AsyncEnd:
            w.key("ph");
            w.value("e");
            w.key("name");
            w.value(name_of(e.name));
            w.key("cat");
            w.value("libra");
            w.key("id");
            w.value(e.value);
            break;
          case Ev::Counter:
            w.key("ph");
            w.value("C");
            w.key("name");
            w.value(name_of(e.name));
            break;
          case Ev::Instant:
            w.key("ph");
            w.value("i");
            w.key("name");
            w.value(name_of(e.name));
            w.key("s");
            w.value("t");
            break;
        }
        w.key("ts");
        w.value(static_cast<std::uint64_t>(e.tick));
        w.key("pid");
        w.value(std::uint64_t{0});
        w.key("tid");
        w.value(static_cast<std::uint64_t>(lanes[ref.lane]->tid));
        if (e.type == Ev::Counter) {
            w.key("args");
            w.beginObject();
            w.key("value");
            w.value(e.value);
            w.endObject();
        } else if (e.type == Ev::Begin && e.value != 0) {
            w.key("args");
            w.beginObject();
            w.key("v");
            w.value(e.value);
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    w.key("displayTimeUnit");
    w.value("ns");
    w.endObject();
    return w.str();
}

Status
TraceSink::writeChromeTrace(const std::string &path) const
{
    return writeTextFile(path, chromeTraceJson());
}

void
TraceSink::exportState(SnapshotWriter &w) const
{
    std::lock_guard<std::mutex> lock(mtx);
    w.putU64(names.size());
    for (const std::string &n : names)
        w.putString(n);
    w.putU64(lanes.size());
    for (const auto &l : lanes) {
        w.putString(l->laneName);
        w.putU64(l->buf.size());
        for (const Event &e : l->buf) {
            w.putU64(e.tick);
            w.putU32(e.name);
            w.putU64(e.value);
            w.putU8(static_cast<std::uint8_t>(e.type));
        }
    }
}

void
TraceSink::importState(SnapshotReader &r)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (!r.check(lanes.empty() && names.empty(),
                 "trace restore into a non-empty sink"))
        return;
    const std::uint64_t num_names = r.takeU64();
    for (std::uint64_t i = 0; r.ok() && i < num_names; ++i)
        names.push_back(r.takeString());
    const std::uint64_t num_lanes = r.takeU64();
    for (std::uint64_t li = 0; r.ok() && li < num_lanes; ++li) {
        auto l = std::make_unique<Lane>();
        l->laneName = r.takeString();
        l->tid = static_cast<std::uint32_t>(li);
        l->enabledFlag = &recording;
        const std::uint64_t num_events = r.takeU64();
        for (std::uint64_t i = 0; r.ok() && i < num_events; ++i) {
            Event e;
            e.tick = r.takeU64();
            e.name = r.takeU32();
            e.value = r.takeU64();
            const std::uint8_t type = r.takeU8();
            if (!r.check(type <= static_cast<std::uint8_t>(Ev::Instant),
                         "trace event type out of range"))
                break;
            e.type = static_cast<Ev>(type);
            r.check(e.type == Ev::End || e.name < names.size(),
                    "trace event names an uninterned id");
            l->buf.push_back(e);
        }
        lanes.push_back(std::move(l));
    }
}

} // namespace libra
