#include "sim/event_queue.hh"

#include <algorithm>

#include "check/snapshot.hh"
#include "common/log.hh"

namespace libra
{

std::uint32_t
EventQueue::acquireSlot(EventCallback &&cb)
{
    if (!freeSlots.empty()) {
        const std::uint32_t slot = freeSlots.back();
        freeSlots.pop_back();
        slots[slot] = std::move(cb);
        return slot;
    }
    const std::uint32_t slot = static_cast<std::uint32_t>(slots.size());
    slots.push_back(std::move(cb));
    return slot;
}

void
EventQueue::schedule(Tick when, EventCallback cb)
{
    libra_assert(when >= curTick,
                 "scheduling in the past: ", when, " < ", curTick);
    const std::uint32_t slot = acquireSlot(std::move(cb));
    if (when == curTick) {
        // Same-tick batch: FIFO order is (when, seq) order here, since
        // every heap entry at curTick was scheduled before the tick
        // started and therefore carries a smaller seq.
        ++nextSeq;
        nowQ.push_back(slot);
        return;
    }
    heap.push_back(HeapEntry{when, nextSeq++, slot});
    std::push_heap(heap.begin(), heap.end(), Later{});
}

void
EventQueue::runSlot(std::uint32_t slot)
{
    // Move the callback out before invoking: the callback may schedule
    // new events, which may recycle this very slot.
    EventCallback cb = std::move(slots[slot]);
    freeSlots.push_back(slot);
    ++executed;
    cb();
}

bool
EventQueue::runOne()
{
    // Heap entries at curTick always precede the same-tick batch (their
    // seq is smaller); the batch precedes any strictly later tick.
    if (!heap.empty() && heap.front().when == curTick) {
        std::pop_heap(heap.begin(), heap.end(), Later{});
        const std::uint32_t slot = heap.back().slot;
        heap.pop_back();
        runSlot(slot);
        return true;
    }
    if (nowHead != nowQ.size()) {
        const std::uint32_t slot = nowQ[nowHead++];
        if (nowHead == nowQ.size()) {
            nowQ.clear();
            nowHead = 0;
        }
        runSlot(slot);
        return true;
    }
    if (heap.empty())
        return false;
    std::pop_heap(heap.begin(), heap.end(), Later{});
    const HeapEntry e = heap.back();
    heap.pop_back();
    libra_assert(e.when >= curTick, "heap returned a past event");
    curTick = e.when;
    runSlot(e.slot);
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t count = 0;
    while (!empty() && nextEventTick() <= limit) {
        runOne();
        ++count;
    }
    return count;
}

void
EventQueue::exportState(SnapshotWriter &w) const
{
    libra_assert(empty(), "event-queue snapshot with pending events");
    w.putU64(curTick);
    w.putU64(nextSeq);
    w.putU64(executed);
}

void
EventQueue::importState(SnapshotReader &r)
{
    libra_assert(empty(), "event-queue restore into a non-empty queue");
    curTick = r.takeU64();
    nextSeq = r.takeU64();
    executed = r.takeU64();
}

void
EventQueue::advanceTo(Tick when)
{
    if (when <= curTick)
        return;
    libra_assert(nextEventTick() >= when,
                 "advanceTo(", when, ") would skip a pending event at ",
                 nextEventTick());
    curTick = when;
}

} // namespace libra
