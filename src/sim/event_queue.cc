#include "sim/event_queue.hh"

#include <algorithm>

#include "common/log.hh"

namespace libra
{

void
EventQueue::schedule(Tick when, EventCallback cb)
{
    libra_assert(when >= curTick,
                 "scheduling in the past: ", when, " < ", curTick);
    heap.push(Event{when, nextSeq++, std::move(cb)});
}

bool
EventQueue::runOne()
{
    if (heap.empty())
        return false;
    Event e = heap.pop();
    libra_assert(e.when >= curTick, "heap returned a past event");
    curTick = e.when;
    ++executed;
    e.cb();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t count = 0;
    while (!heap.empty() && heap.top().when <= limit) {
        runOne();
        ++count;
    }
    return count;
}

} // namespace libra
