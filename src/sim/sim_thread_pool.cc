#include "sim/sim_thread_pool.hh"

#include <algorithm>

#include "common/log.hh"

namespace libra
{

namespace
{

/** Spin budget before parking on the condition variable. Windows run
 *  every few microseconds, so the common case should resolve while
 *  spinning; the cv is the idle-phase (geometry, drain) fallback. */
constexpr int kSpinIterations = 20000;

} // namespace

SimThreadPool::SimThreadPool(std::uint32_t threads)
    : laneCount(std::max(1u, threads))
{
    workers.reserve(laneCount - 1);
    for (std::uint32_t lane = 1; lane < laneCount; ++lane)
        workers.emplace_back([this, lane] { workerLoop(lane); });
}

SimThreadPool::~SimThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping.store(true, std::memory_order_relaxed);
        epoch.fetch_add(1, std::memory_order_release);
    }
    wakeCv.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
SimThreadPool::runLane(std::uint32_t lane)
{
    const std::function<void(std::uint32_t)> &fn = *job;
    for (std::uint32_t i = lane; i < jobCount; i += laneCount)
        fn(i);
}

void
SimThreadPool::workerLoop(std::uint32_t lane)
{
    std::uint64_t seen = 0;
    while (true) {
        // Spin for the next epoch, then park.
        std::uint64_t next = epoch.load(std::memory_order_acquire);
        for (int spin = 0; next == seen && spin < kSpinIterations;
             ++spin) {
            next = epoch.load(std::memory_order_acquire);
        }
        if (next == seen) {
            std::unique_lock<std::mutex> lock(mtx);
            wakeCv.wait(lock, [&] {
                return epoch.load(std::memory_order_acquire) != seen;
            });
            next = epoch.load(std::memory_order_acquire);
        }
        seen = next;
        if (stopping.load(std::memory_order_relaxed))
            return;
        runLane(lane);
        if (lanesDone.fetch_add(1, std::memory_order_release) + 1
            == laneCount - 1) {
            // Last worker out: the caller may be parked on doneCv.
            std::lock_guard<std::mutex> lock(mtx);
            doneCv.notify_one();
        }
    }
}

void
SimThreadPool::parallelFor(std::uint32_t count,
                           const std::function<void(std::uint32_t)> &fn)
{
    if (laneCount == 1 || count <= 1) {
        for (std::uint32_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mtx);
        job = &fn;
        jobCount = count;
        lanesDone.store(0, std::memory_order_relaxed);
        epoch.fetch_add(1, std::memory_order_release);
    }
    wakeCv.notify_all();

    runLane(0);

    const std::uint32_t target = laneCount - 1;
    std::uint32_t done = lanesDone.load(std::memory_order_acquire);
    for (int spin = 0; done != target && spin < kSpinIterations;
         ++spin) {
        done = lanesDone.load(std::memory_order_acquire);
    }
    if (done != target) {
        std::unique_lock<std::mutex> lock(mtx);
        doneCv.wait(lock, [&] {
            return lanesDone.load(std::memory_order_acquire) == target;
        });
    }
    job = nullptr;
}

std::uint32_t
clampOversubscribedJobs(std::uint32_t jobs, std::uint32_t sim_threads,
                        std::uint32_t hardware)
{
    jobs = std::max(1u, jobs);
    const std::uint32_t lanes = std::max(1u, sim_threads);
    if (hardware == 0 || jobs * lanes <= hardware)
        return jobs;
    return std::max(1u, hardware / lanes);
}

} // namespace libra
