/**
 * @file
 * Parallel sweep engine: run many (benchmark, config) simulations
 * concurrently on a work-stealing thread pool.
 *
 * Simulations are embarrassingly parallel — each owns its Gpu, its
 * EventQueue and all mutable state — so a sweep of N configurations
 * scales with the host's cores. Two properties are guaranteed:
 *
 *  - **Determinism.** Results come back indexed by submission order and
 *    each simulation is bit-identical to a serial run: the worker count
 *    affects wall-clock time only, never a single statistic.
 *  - **Error isolation.** A job that fails (invalid config, watchdog
 *    giving up, even a stray exception) reports its Status in its own
 *    slot; the remaining jobs run to completion.
 *
 * A shared SceneCache lets the N configs of one benchmark build the
 * scene (geometry + texture pool) once: Scene is immutable after
 * construction, so concurrent readers need no locking.
 */

#ifndef LIBRA_SIM_SWEEP_HH
#define LIBRA_SIM_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "check/fault_injector.hh"
#include "common/status.hh"
#include "gpu/gpu_config.hh"
#include "gpu/runner.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

namespace libra
{

/** One simulation of a sweep: render @p frames of @p spec under
 *  @p config, starting at absolute frame @p firstFrame. */
struct SweepJob
{
    const BenchmarkSpec *spec = nullptr;
    GpuConfig config;
    std::uint32_t frames = 0;
    std::uint32_t firstFrame = 0;
};

/**
 * Thread-safe cache of built scenes, keyed by (benchmark, resolution).
 * Concurrent requests for the same key block until the single builder
 * finishes; the returned Scene is shared read-only.
 */
class SceneCache
{
  public:
    /** The scene for (@p spec, @p width x @p height), built at most
     *  once per key for the cache's lifetime. */
    std::shared_ptr<const Scene> get(const BenchmarkSpec &spec,
                                     std::uint32_t width,
                                     std::uint32_t height);

    /** Scenes actually constructed — test hook for the build-once
     *  guarantee. */
    std::uint64_t builds() const { return built.load(); }

  private:
    using Key = std::tuple<std::string, std::uint32_t, std::uint32_t>;

    struct Slot
    {
        std::once_flag once;
        std::shared_ptr<const Scene> scene;
    };

    std::mutex mtx;                                //!< guards slots map
    std::map<Key, std::shared_ptr<Slot>> slots;
    std::atomic<std::uint64_t> built{0};
};

/**
 * Checkpointing policy of one sweep (DESIGN.md §10). Two independent
 * mechanisms, both built on frame-boundary snapshots
 * (src/check/snapshot.hh):
 *
 *  - **Periodic checkpoints** (@ref dir + @ref every): every job writes
 *    a snapshot into @ref dir every N frames; with @ref fromCheckpoint
 *    a re-run sweep restores each job from its freshest usable
 *    snapshot and renders only the remaining frames. Byte-identity:
 *    the resumed results equal the uninterrupted ones.
 *  - **Warm-prefix forking** (@ref warmPrefixFrames): jobs differing
 *    only in the adaptive-controller thresholds (equal
 *    GpuConfig::warmPrefixHash(), same benchmark/resolution/frame
 *    range — e.g. a fig19_sensitivity threshold sweep) render
 *    byte-identical opening frames. The first group member runs that
 *    prefix once, snapshots in memory, and every member forks from the
 *    restored state instead of re-rendering it. Disabled while a fault
 *    plan is armed (injected faults are positional; forking would
 *    change what each job observes).
 */
struct CheckpointPolicy
{
    /** Snapshot directory; empty disables periodic checkpointing. */
    std::string dir;

    /** Write a snapshot every N finished frames (0 = never). */
    std::uint32_t every = 0;

    /** Restore each job from the freshest usable snapshot in dir. */
    bool fromCheckpoint = false;

    /**
     * Warm-prefix length in frames shared across a threshold sweep; 0
     * disables forking. Must not exceed the frames the adaptive
     * controller renders before its thresholds first matter (the
     * controller compares frame feedback from frame 2 on, so 2 is the
     * safe default).
     */
    std::uint32_t warmPrefixFrames = 0;
};

/**
 * Failure-handling policy for SweepRunner::runWithPolicy. The default
 * policy (all fields at their defaults) behaves exactly like run():
 * one attempt per job, no deadline, no quarantine, no journal.
 *
 * See DESIGN.md, "Failure model", for the taxonomy behind the knobs.
 */
struct SweepPolicy
{
    /** Wall-clock deadline per job *attempt* in milliseconds; 0 = none.
     *  Enforced cooperatively via the Watchdog's CancelToken: the job
     *  aborts with DeadlineExceeded at its next event-loop poll. */
    std::uint64_t deadlineMs = 0;

    /** Extra attempts after a transient failure (isTransientFailure:
     *  Unavailable, DeadlineExceeded). Permanent failures never
     *  retry — the simulator is deterministic. */
    std::uint32_t maxRetries = 0;

    /** Base delay before retry k, doubling each time
     *  (backoffMs << k, capped at 30 s); 0 = retry immediately. */
    std::uint64_t backoffMs = 0;

    /**
     * Permanent failures of one configHash() after which further jobs
     * with that config fail fast (FailedPrecondition, "quarantined")
     * instead of burning a worker on a known-poisoned config; 0
     * disables. When enabled, jobs sharing a config hash execute as
     * one sequential chain (in submission order) so quarantine
     * decisions are deterministic — distinct configs still run fully
     * parallel.
     */
    std::uint32_t quarantineThreshold = 0;

    /** Append-only fsync'd result journal (sweep_journal.hh); empty =
     *  no journal. */
    std::string journalPath;

    /** Replay journaled successes instead of re-running them; failed
     *  and unfinished jobs re-run. Needs journalPath. */
    bool resume = false;

    /** Armed fault plan (chaos testing; empty = no injection). */
    FaultPlan faults;

    /** Snapshot/restore and warm-prefix forking (see CheckpointPolicy). */
    CheckpointPolicy checkpoint;
};

/** Result plus execution metadata of one job under runWithPolicy. */
struct JobOutcome
{
    Result<RunResult> result =
        Status::error(ErrorCode::Unavailable, "job never ran");

    std::uint32_t attempts = 0;  //!< attempts consumed (0 if replayed)
    bool fromJournal = false;    //!< replayed, not executed
    bool quarantined = false;    //!< failed fast on a quarantined config
    bool notRun = false;         //!< sweep died before this job started
};

/** Everything runWithPolicy learned about a sweep. */
struct SweepOutcome
{
    std::vector<JobOutcome> jobs; //!< submission order

    /** The journal's simulated kill fired (fault plans only): appends
     *  stopped and unstarted jobs were abandoned, as a real SIGKILL
     *  would. */
    bool killed = false;

    std::uint64_t replayedFromJournal = 0;

    /** Jobs that forked from a shared warm-prefix snapshot instead of
     *  rendering their opening frames cold (CheckpointPolicy). */
    std::uint64_t warmPrefixForks = 0;

    /** Jobs whose final result is a failure (incl. quarantined and
     *  not-run). */
    std::size_t failureCount() const;
};

/**
 * Work-stealing pool of sweep workers.
 *
 * Jobs are dealt round-robin onto per-worker deques; a worker pops from
 * its own deque and steals from its neighbours when empty, so a handful
 * of long simulations cannot strand the remaining workers idle.
 */
class SweepRunner
{
  public:
    /** @p workers 0 picks std::thread::hardware_concurrency(). */
    explicit SweepRunner(unsigned workers = 0);

    /**
     * Run every job and return their results in submission order.
     * With @p cache non-null, scenes are built through it (and shared
     * with any other sweep using the same cache); otherwise each job
     * builds its own.
     */
    std::vector<Result<RunResult>> run(std::vector<SweepJob> jobs,
                                       SceneCache *cache = nullptr);

    /**
     * Fault-tolerant execution: run() plus per-attempt wall-clock
     * deadlines, bounded exponential-backoff retries for transient
     * failures, quarantine of repeatedly-failing configs, a crash-safe
     * result journal with resume, and fault injection. Failure Status
     * messages are prefixed "job <index> [<key>]: " (the key carries
     * benchmark, resolution, frame range and config hash) so farm logs
     * are attributable. A sweep with failures still completes — policy
     * on whether that fails the process lives with the caller (bench
     * binaries: exit nonzero unless --keep-going).
     *
     * Guarantee: with a default policy, outcomes carry results
     * bit-identical to run() on the same jobs.
     */
    SweepOutcome runWithPolicy(std::vector<SweepJob> jobs,
                               const SweepPolicy &policy,
                               SceneCache *cache = nullptr);

    unsigned workers() const { return workerCount; }

  private:
    unsigned workerCount;
};

} // namespace libra

#endif // LIBRA_SIM_SWEEP_HH
