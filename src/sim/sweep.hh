/**
 * @file
 * Parallel sweep engine: run many (benchmark, config) simulations
 * concurrently on a work-stealing thread pool.
 *
 * Simulations are embarrassingly parallel — each owns its Gpu, its
 * EventQueue and all mutable state — so a sweep of N configurations
 * scales with the host's cores. Two properties are guaranteed:
 *
 *  - **Determinism.** Results come back indexed by submission order and
 *    each simulation is bit-identical to a serial run: the worker count
 *    affects wall-clock time only, never a single statistic.
 *  - **Error isolation.** A job that fails (invalid config, watchdog
 *    giving up, even a stray exception) reports its Status in its own
 *    slot; the remaining jobs run to completion.
 *
 * A shared SceneCache lets the N configs of one benchmark build the
 * scene (geometry + texture pool) once: Scene is immutable after
 * construction, so concurrent readers need no locking.
 */

#ifndef LIBRA_SIM_SWEEP_HH
#define LIBRA_SIM_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/status.hh"
#include "gpu/gpu_config.hh"
#include "gpu/runner.hh"
#include "workload/benchmarks.hh"
#include "workload/scene.hh"

namespace libra
{

/** One simulation of a sweep: render @p frames of @p spec under
 *  @p config, starting at absolute frame @p firstFrame. */
struct SweepJob
{
    const BenchmarkSpec *spec = nullptr;
    GpuConfig config;
    std::uint32_t frames = 0;
    std::uint32_t firstFrame = 0;
};

/**
 * Thread-safe cache of built scenes, keyed by (benchmark, resolution).
 * Concurrent requests for the same key block until the single builder
 * finishes; the returned Scene is shared read-only.
 */
class SceneCache
{
  public:
    /** The scene for (@p spec, @p width x @p height), built at most
     *  once per key for the cache's lifetime. */
    std::shared_ptr<const Scene> get(const BenchmarkSpec &spec,
                                     std::uint32_t width,
                                     std::uint32_t height);

    /** Scenes actually constructed — test hook for the build-once
     *  guarantee. */
    std::uint64_t builds() const { return built.load(); }

  private:
    using Key = std::tuple<std::string, std::uint32_t, std::uint32_t>;

    struct Slot
    {
        std::once_flag once;
        std::shared_ptr<const Scene> scene;
    };

    std::mutex mtx;                                //!< guards slots map
    std::map<Key, std::shared_ptr<Slot>> slots;
    std::atomic<std::uint64_t> built{0};
};

/**
 * Work-stealing pool of sweep workers.
 *
 * Jobs are dealt round-robin onto per-worker deques; a worker pops from
 * its own deque and steals from its neighbours when empty, so a handful
 * of long simulations cannot strand the remaining workers idle.
 */
class SweepRunner
{
  public:
    /** @p workers 0 picks std::thread::hardware_concurrency(). */
    explicit SweepRunner(unsigned workers = 0);

    /**
     * Run every job and return their results in submission order.
     * With @p cache non-null, scenes are built through it (and shared
     * with any other sweep using the same cache); otherwise each job
     * builds its own.
     */
    std::vector<Result<RunResult>> run(std::vector<SweepJob> jobs,
                                       SceneCache *cache = nullptr);

    unsigned workers() const { return workerCount; }

  private:
    unsigned workerCount;
};

} // namespace libra

#endif // LIBRA_SIM_SWEEP_HH
