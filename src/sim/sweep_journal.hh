/**
 * @file
 * Crash-safe sweep result journal: an append-only, fsync'd JSON-lines
 * file recording the outcome of every finished sweep job, keyed on
 * (benchmark, resolution, frame range, config hash).
 *
 * Purpose (ROADMAP item 2, "sim-farm"): a multi-hour sweep killed at
 * any point — power loss, OOM kill, ^C — must not lose completed work.
 * Each job outcome is one self-contained line, written and fsync'd
 * before the sweep moves on; on restart, SweepRunner::runWithPolicy
 * with SweepPolicy::resume replays journaled successes (restoring the
 * full RunResult, so the regenerated report is byte-identical to an
 * uninterrupted run) and re-runs only the remainder.
 *
 * Line format (`libra.sweep_journal/1`), one JSON object per line:
 *
 *   {"schema":"libra.sweep_journal/1",
 *    "key":"CCS:256x128:f2@0:cfg:0123456789abcdef",
 *    "ok":true,"attempts":1,"result":{...full RunResult...}}
 *   {"schema":"libra.sweep_journal/1","key":"...","ok":false,
 *    "attempts":3,"code":"unavailable","message":"..."}
 *
 * Crash tolerance: a process dying mid-append leaves at most one torn
 * trailing line; load() discards it (with a warning) and treats the job
 * as never-finished. Any torn line *before* the last is real corruption
 * and fails with CorruptData. Not journaled: the GpuConfig (the resumed
 * sweep re-specifies identical jobs — the key's config hash verifies
 * that) and the event-trace TraceSink (side artifact, not part of a
 * sweep report).
 *
 * Fault hooks: armKill(n) simulates the process dying during the nth
 * append — half the line's bytes reach the file, nothing is synced
 * after, and every later append is a silent no-op, exactly what a
 * kill(9) at that point leaves on disk. The chaos-soak test drives its
 * kill-and-resume round-trip through this.
 */

#ifndef LIBRA_SIM_SWEEP_JOURNAL_HH
#define LIBRA_SIM_SWEEP_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hh"
#include "gpu/runner.hh"

namespace libra
{

struct SweepJob;
struct JsonValue;
class JsonWriter;

/** One journaled job outcome. */
struct JournalRecord
{
    std::string key;
    bool ok = false;
    std::uint32_t attempts = 1; //!< attempts consumed (1 = no retries)

    // When !ok:
    ErrorCode code = ErrorCode::Ok;
    std::string message;

    // When ok (config and trace are not journaled; see file header):
    RunResult result;
};

/**
 * Stable identity of a sweep job: benchmark abbrev, resolution, frame
 * range and the 16-hex-digit GpuConfig::configHash(). Two jobs with
 * equal keys produce byte-identical results (the simulator is
 * deterministic), which is what makes replay sound.
 */
std::string sweepJobKey(const SweepJob &job);

/** Serialize @p r (minus config/trace) as one JSON object value. */
void runResultToJson(JsonWriter &w, const RunResult &r);

/** Inverse of runResultToJson; CorruptData on structural problems.
 *  64-bit integers are recovered exactly (the parser keeps the raw
 *  literal), image pixel hashes round-trip via hex strings. */
Result<RunResult> runResultFromJson(const JsonValue &v);

class SweepJournal
{
  public:
    SweepJournal() = default;
    SweepJournal(SweepJournal &&) = default;
    SweepJournal &operator=(SweepJournal &&) = default;

    /** Open @p path for appending, creating it if absent. */
    static Result<SweepJournal> open(const std::string &path);

    /**
     * Read every complete record of @p path. A missing file is an
     * empty journal (first run); a torn *final* line is discarded; any
     * earlier unparseable line is CorruptData.
     */
    static Result<std::vector<JournalRecord>>
    load(const std::string &path);

    /** Serialize, append and fsync one record. No-op once killed(). */
    Status append(const JournalRecord &record);

    /** Fault hook: simulate death during the @p at_append'th append
     *  (1-based); 0 disarms. */
    void armKill(std::uint64_t at_append) { killAt = at_append; }

    /** True once the simulated kill fired; no further bytes reach the
     *  file, mirroring a dead process. */
    bool killed() const { return killedFlag; }

    std::uint64_t appendsDone() const { return appendCount; }

  private:
    struct FileCloser
    {
        void
        operator()(std::FILE *f) const
        {
            if (f)
                std::fclose(f);
        }
    };

    std::unique_ptr<std::FILE, FileCloser> file;
    std::string filePath;
    std::uint64_t appendCount = 0;
    std::uint64_t killAt = 0;
    bool killedFlag = false;
};

} // namespace libra

#endif // LIBRA_SIM_SWEEP_JOURNAL_HH
