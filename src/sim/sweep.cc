#include "sim/sweep.hh"

#include <algorithm>
#include <deque>
#include <exception>
#include <optional>
#include <thread>

#include "common/log.hh"

namespace libra
{

std::shared_ptr<const Scene>
SceneCache::get(const BenchmarkSpec &spec, std::uint32_t width,
                std::uint32_t height)
{
    std::shared_ptr<Slot> slot;
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto &entry = slots[Key{spec.abbrev, width, height}];
        if (!entry)
            entry = std::make_shared<Slot>();
        slot = entry;
    }
    // Build outside the map lock: a slow scene build must not serialize
    // lookups of other keys. call_once makes racing getters of the same
    // key wait for the one builder.
    std::call_once(slot->once, [&] {
        slot->scene = std::make_shared<const Scene>(spec, width, height);
        ++built;
    });
    return slot->scene;
}

namespace
{

/** Run one job start-to-finish; never throws. */
Result<RunResult>
runJob(const SweepJob &job, SceneCache *cache)
{
    try {
        if (!job.spec) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "sweep job without a benchmark spec");
        }
        if (cache) {
            const std::shared_ptr<const Scene> scene = cache->get(
                *job.spec, job.config.screenWidth,
                job.config.screenHeight);
            return runBenchmark(*scene, job.config, job.frames,
                                job.firstFrame);
        }
        return runBenchmark(*job.spec, job.config, job.frames,
                            job.firstFrame);
    } catch (const std::exception &e) {
        // Isolation: a throwing job loses its own data point only.
        return Status::error(ErrorCode::FailedPrecondition, "benchmark ",
                             job.spec ? job.spec->abbrev : "?",
                             ": uncaught exception: ", e.what());
    }
}

/** Per-worker job queue. Stealing keeps the pool busy when job
 *  runtimes are skewed (one heavy config, many light ones). */
struct WorkerQueue
{
    std::mutex mtx;
    std::deque<std::size_t> jobs; //!< indices into the job vector

    void
    push(std::size_t index)
    {
        std::lock_guard<std::mutex> lock(mtx);
        jobs.push_back(index);
    }

    /** The owner pops newest-first (better cache reuse of the scene it
     *  just touched); thieves steal oldest-first. */
    std::optional<std::size_t>
    pop()
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (jobs.empty())
            return std::nullopt;
        const std::size_t index = jobs.back();
        jobs.pop_back();
        return index;
    }

    std::optional<std::size_t>
    steal()
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (jobs.empty())
            return std::nullopt;
        const std::size_t index = jobs.front();
        jobs.pop_front();
        return index;
    }
};

} // namespace

SweepRunner::SweepRunner(unsigned workers)
    : workerCount(workers != 0 ? workers
                               : std::max(1u,
                                          std::thread::
                                              hardware_concurrency()))
{}

std::vector<Result<RunResult>>
SweepRunner::run(std::vector<SweepJob> jobs, SceneCache *cache)
{
    std::vector<Result<RunResult>> results;
    if (jobs.empty())
        return results;

    // Single worker (or single job): run inline, no threads. This is
    // also the reference order the determinism test compares against.
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(workerCount, jobs.size()));
    if (workers <= 1) {
        results.reserve(jobs.size());
        for (const SweepJob &job : jobs)
            results.push_back(runJob(job, cache));
        return results;
    }

    // Submission-order results: each job writes only its own slot, so
    // no synchronization beyond join() is needed on the output.
    std::vector<std::optional<Result<RunResult>>> slots(jobs.size());
    std::vector<WorkerQueue> queues(workers);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        queues[i % workers].push(i);

    auto work = [&](unsigned self) {
        while (true) {
            std::optional<std::size_t> index = queues[self].pop();
            for (unsigned k = 1; !index && k < workers; ++k)
                index = queues[(self + k) % workers].steal();
            if (!index)
                return; // every queue drained
            slots[*index] = runJob(jobs[*index], cache);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(work, w);
    for (std::thread &t : pool)
        t.join();

    results.reserve(jobs.size());
    for (std::optional<Result<RunResult>> &slot : slots) {
        libra_assert(slot.has_value(), "sweep job never ran");
        results.push_back(std::move(*slot));
    }
    return results;
}

} // namespace libra
