#include "sim/sweep.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <optional>
#include <thread>
#include <unordered_map>

#include "common/log.hh"
#include "sim/sweep_journal.hh"

namespace libra
{

std::shared_ptr<const Scene>
SceneCache::get(const BenchmarkSpec &spec, std::uint32_t width,
                std::uint32_t height)
{
    std::shared_ptr<Slot> slot;
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto &entry = slots[Key{spec.abbrev, width, height}];
        if (!entry)
            entry = std::make_shared<Slot>();
        slot = entry;
    }
    // Build outside the map lock: a slow scene build must not serialize
    // lookups of other keys. call_once makes racing getters of the same
    // key wait for the one builder.
    std::call_once(slot->once, [&] {
        slot->scene = std::make_shared<const Scene>(spec, width, height);
        ++built;
    });
    return slot->scene;
}

namespace
{

/** Run one job start-to-finish; never throws. */
Result<RunResult>
runJob(const SweepJob &job, SceneCache *cache,
       const CheckpointPlan &checkpoint = {})
{
    try {
        if (!job.spec) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "sweep job without a benchmark spec");
        }
        if (cache) {
            const std::shared_ptr<const Scene> scene = cache->get(
                *job.spec, job.config.screenWidth,
                job.config.screenHeight);
            return runBenchmark(*scene, job.config, job.frames,
                                job.firstFrame, checkpoint);
        }
        if (!checkpoint.enabled()) {
            return runBenchmark(*job.spec, job.config, job.frames,
                                job.firstFrame);
        }
        // Validate before the (possibly expensive) scene build, like
        // the spec-level runBenchmark overload does.
        if (Status st = job.config.validate(); !st.isOk()) {
            return Status::error(st.code(), "benchmark ",
                                 job.spec->abbrev,
                                 ": invalid GPU configuration: ",
                                 st.message());
        }
        const Scene scene(*job.spec, job.config.screenWidth,
                          job.config.screenHeight);
        return runBenchmark(scene, job.config, job.frames,
                            job.firstFrame, checkpoint);
    } catch (const std::exception &e) {
        // Isolation: a throwing job loses its own data point only.
        return Status::error(ErrorCode::FailedPrecondition, "benchmark ",
                             job.spec ? job.spec->abbrev : "?",
                             ": uncaught exception: ", e.what());
    }
}

/** Per-worker job queue. Stealing keeps the pool busy when job
 *  runtimes are skewed (one heavy config, many light ones). */
struct WorkerQueue
{
    std::mutex mtx;
    std::deque<std::size_t> jobs; //!< indices into the job vector

    void
    push(std::size_t index)
    {
        std::lock_guard<std::mutex> lock(mtx);
        jobs.push_back(index);
    }

    /** The owner pops newest-first (better cache reuse of the scene it
     *  just touched); thieves steal oldest-first. */
    std::optional<std::size_t>
    pop()
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (jobs.empty())
            return std::nullopt;
        const std::size_t index = jobs.back();
        jobs.pop_back();
        return index;
    }

    std::optional<std::size_t>
    steal()
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (jobs.empty())
            return std::nullopt;
        const std::size_t index = jobs.front();
        jobs.pop_front();
        return index;
    }
};

} // namespace

SweepRunner::SweepRunner(unsigned workers)
    : workerCount(workers != 0 ? workers
                               : std::max(1u,
                                          std::thread::
                                              hardware_concurrency()))
{}

std::vector<Result<RunResult>>
SweepRunner::run(std::vector<SweepJob> jobs, SceneCache *cache)
{
    std::vector<Result<RunResult>> results;
    if (jobs.empty())
        return results;

    // Single worker (or single job): run inline, no threads. This is
    // also the reference order the determinism test compares against.
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(workerCount, jobs.size()));
    if (workers <= 1) {
        results.reserve(jobs.size());
        for (const SweepJob &job : jobs)
            results.push_back(runJob(job, cache));
        return results;
    }

    // Submission-order results: each job writes only its own slot, so
    // no synchronization beyond join() is needed on the output.
    std::vector<std::optional<Result<RunResult>>> slots(jobs.size());
    std::vector<WorkerQueue> queues(workers);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        queues[i % workers].push(i);

    auto work = [&](unsigned self) {
        while (true) {
            std::optional<std::size_t> index = queues[self].pop();
            for (unsigned k = 1; !index && k < workers; ++k)
                index = queues[(self + k) % workers].steal();
            if (!index)
                return; // every queue drained
            slots[*index] = runJob(jobs[*index], cache);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(work, w);
    for (std::thread &t : pool)
        t.join();

    results.reserve(jobs.size());
    for (std::optional<Result<RunResult>> &slot : slots) {
        libra_assert(slot.has_value(), "sweep job never ran");
        results.push_back(std::move(*slot));
    }
    return results;
}

std::size_t
SweepOutcome::failureCount() const
{
    std::size_t n = 0;
    for (const JobOutcome &o : jobs)
        if (!o.result.isOk())
            ++n;
    return n;
}

namespace
{

/**
 * One warm-prefix group: jobs with equal (benchmark, resolution, frame
 * range, warmPrefixHash) share the snapshot of their common opening
 * frames. The first member to run renders the prefix once (call_once;
 * racing members block on it); a failed prefix leaves bytes null and
 * every member silently runs cold.
 */
struct WarmGroup
{
    std::once_flag once;
    std::shared_ptr<const std::vector<std::uint8_t>> bytes;
};

/** Shared mutable state of one runWithPolicy() execution. */
struct PolicyRun
{
    const std::vector<SweepJob> *jobs = nullptr;
    const SweepPolicy *policy = nullptr;
    SceneCache *cache = nullptr;
    std::vector<std::string> keys;       //!< sweepJobKey per job
    std::vector<std::uint64_t> hashes;   //!< configHash per job
    std::vector<JobOutcome> *outcomes = nullptr;

    /** Warm-prefix group of each job; null = no forking for it. */
    std::vector<std::shared_ptr<WarmGroup>> warmGroups;
    std::atomic<std::uint64_t> warmForks{0};

    std::mutex quarantineMtx;
    std::unordered_map<std::uint64_t, std::uint32_t> permanentStrikes;

    std::mutex journalMtx;
    SweepJournal *journal = nullptr; //!< null when no journal armed

    /** Set once the journal's simulated kill fires: the "process" is
     *  dead, so no further job may start. */
    std::atomic<bool> killFlag{false};
};

/** "job 3 [CCS:256x128:f2@0:cfg:...]: <message>" — attributable in
 *  farm logs (satellite: job index + benchmark + config hash). */
Status
attributed(const PolicyRun &run, std::size_t index, const Status &st)
{
    return Status::error(st.code(), "job ", index, " [",
                         run.keys[index], "]: ", st.message());
}

void
journalOutcome(PolicyRun &run, std::size_t index)
{
    if (!run.journal)
        return;
    const JobOutcome &outcome = (*run.outcomes)[index];
    JournalRecord record;
    record.key = run.keys[index];
    record.attempts = outcome.attempts;
    if (outcome.result.isOk()) {
        record.ok = true;
        record.result = *outcome.result;
    } else {
        record.ok = false;
        record.code = outcome.result.status().code();
        record.message = outcome.result.status().message();
    }
    std::lock_guard<std::mutex> lock(run.journalMtx);
    if (Status st = run.journal->append(record); !st.isOk())
        warn("sweep journal: ", st.toString());
    if (run.journal->killed())
        run.killFlag.store(true, std::memory_order_relaxed);
}

/** Execute job @p index under the policy: quarantine fast-fail, then
 *  the attempt/retry loop, then journaling. */
void
runPolicyJob(PolicyRun &run, std::size_t index)
{
    const SweepPolicy &policy = *run.policy;
    JobOutcome &outcome = (*run.outcomes)[index];

    if (run.killFlag.load(std::memory_order_relaxed)) {
        outcome.notRun = true;
        outcome.result = attributed(
            run, index,
            Status::error(ErrorCode::Unavailable,
                          "sweep terminated before this job started"));
        return; // a dead process journals nothing
    }

    if (policy.quarantineThreshold > 0) {
        std::lock_guard<std::mutex> lock(run.quarantineMtx);
        auto it = run.permanentStrikes.find(run.hashes[index]);
        if (it != run.permanentStrikes.end()
            && it->second >= policy.quarantineThreshold) {
            outcome.quarantined = true;
            outcome.result = attributed(
                run, index,
                Status::error(ErrorCode::FailedPrecondition,
                              "config quarantined after ", it->second,
                              " permanent failures"));
            journalOutcome(run, index);
            return;
        }
    }

    // --- Checkpoint plan (constant across attempts) -------------------
    CheckpointPlan checkpoint;
    checkpoint.dir = policy.checkpoint.dir;
    checkpoint.every = policy.checkpoint.every;
    checkpoint.restore = policy.checkpoint.fromCheckpoint;
    if (const std::shared_ptr<WarmGroup> group = run.warmGroups[index]) {
        std::call_once(group->once, [&] {
            // First member to arrive renders the shared prefix once
            // and captures its frame-boundary snapshot in memory.
            SweepJob prefix = (*run.jobs)[index];
            prefix.frames = policy.checkpoint.warmPrefixFrames;
            CheckpointPlan capture;
            capture.captureAfter =
                std::make_shared<std::vector<std::uint8_t>>();
            capture.captureAfterFrames = prefix.frames;
            Result<RunResult> r = runJob(prefix, run.cache, capture);
            if (r.isOk() && !capture.captureAfter->empty()) {
                group->bytes = capture.captureAfter;
            } else {
                warn("warm prefix of job ", index, " [",
                     run.keys[index], "] failed; its group runs cold",
                     r.isOk() ? "" : (": " + r.status().toString()));
            }
        });
        if (group->bytes) {
            checkpoint.warmStart = group->bytes;
            run.warmForks.fetch_add(1, std::memory_order_relaxed);
        }
    }

    for (std::uint32_t attempt = 0;; ++attempt) {
        ++outcome.attempts;
        SweepJob job = (*run.jobs)[index]; // fresh copy per attempt

#if LIBRA_FAULTS_ENABLED
        std::shared_ptr<FaultInjector> injector;
        if (!policy.faults.empty()) {
            // Fresh injector per attempt: a retry replays exactly the
            // faults (and fault positions) the first attempt saw.
            injector =
                std::make_shared<FaultInjector>(policy.faults, index);
            job.config.faults = injector;
        }
#endif
        if (policy.deadlineMs != 0) {
            auto token = std::make_shared<CancelToken>();
            token->setDeadlineAfterMs(policy.deadlineMs);
            job.config.watchdog.cancel = std::move(token);
        }

        Result<RunResult> r = [&]() -> Result<RunResult> {
#if LIBRA_FAULTS_ENABLED
            if (injector && injector->failAttempt(attempt)) {
                return Status::error(ErrorCode::Unavailable,
                                     "injected transient failure "
                                     "(attempt ", attempt, ")");
            }
#endif
            return runJob(job, run.cache, checkpoint);
        }();

        if (r.isOk()) {
            RunResult result = std::move(*r);
            // Scrub the runtime attachments: the stored result must be
            // indistinguishable from a plain run()'s.
            result.config.faults.reset();
            result.config.watchdog.cancel.reset();
            outcome.result = std::move(result);
            break;
        }

        const Status &st = r.status();
        if (isTransientFailure(st.code())
            && attempt < policy.maxRetries) {
            if (policy.backoffMs != 0) {
                const std::uint64_t delay = std::min<std::uint64_t>(
                    policy.backoffMs << std::min<std::uint32_t>(attempt,
                                                                20),
                    30'000);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
            }
            continue;
        }

        if (!isTransientFailure(st.code())
            && policy.quarantineThreshold > 0) {
            std::lock_guard<std::mutex> lock(run.quarantineMtx);
            ++run.permanentStrikes[run.hashes[index]];
        }
        outcome.result = attributed(run, index, st);
        break;
    }

    journalOutcome(run, index);
}

} // namespace

SweepOutcome
SweepRunner::runWithPolicy(std::vector<SweepJob> jobs,
                           const SweepPolicy &policy, SceneCache *cache)
{
    SweepOutcome out;
    out.jobs.resize(jobs.size());
    if (jobs.empty())
        return out;

    PolicyRun run;
    run.jobs = &jobs;
    run.policy = &policy;
    run.cache = cache;
    run.outcomes = &out.jobs;
    run.keys.reserve(jobs.size());
    run.hashes.reserve(jobs.size());
    for (const SweepJob &job : jobs) {
        run.keys.push_back(sweepJobKey(job));
        run.hashes.push_back(job.config.configHash());
    }

    // --- Journal: load (resume), then open for appending --------------
    SweepJournal journal;
    std::vector<JournalRecord> replayable;
    if (!policy.journalPath.empty()) {
        if (policy.resume) {
            Result<std::vector<JournalRecord>> loaded =
                SweepJournal::load(policy.journalPath);
            if (!loaded.isOk()) {
                for (std::size_t i = 0; i < jobs.size(); ++i)
                    out.jobs[i].result =
                        attributed(run, i, loaded.status());
                return out;
            }
            replayable = std::move(*loaded);
        }
        Result<SweepJournal> opened =
            SweepJournal::open(policy.journalPath);
        if (!opened.isOk()) {
            for (std::size_t i = 0; i < jobs.size(); ++i)
                out.jobs[i].result = attributed(run, i, opened.status());
            return out;
        }
        journal = std::move(*opened);
#if LIBRA_FAULTS_ENABLED
        if (!policy.faults.empty()) {
            journal.armKill(
                FaultInjector(policy.faults, 0).killAtAppend());
        }
#endif
        run.journal = &journal;
    }

    // --- Resume: replay journaled successes ---------------------------
    // Failed records are deliberately NOT replayed: re-running them is
    // the point of resuming (a transient hiccup may have cleared).
    std::unordered_map<std::string, const JournalRecord *> done;
    for (const JournalRecord &record : replayable)
        if (record.ok)
            done[record.key] = &record;

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        auto it = done.find(run.keys[i]);
        if (it == done.end()) {
            pending.push_back(i);
            continue;
        }
        JobOutcome &outcome = out.jobs[i];
        RunResult result = it->second->result;
        result.config = jobs[i].config; // the key proved them identical
        result.config.faults.reset();
        result.config.watchdog.cancel.reset();
        outcome.result = std::move(result);
        outcome.attempts = it->second->attempts;
        outcome.fromJournal = true;
        ++out.replayedFromJournal;
    }

    // --- Warm-prefix groups (CheckpointPolicy::warmPrefixFrames) ------
    // Grouped over the still-pending jobs only; a group needs >= 2
    // members to amortize the prefix run, and each member must render
    // past the prefix. Disabled under a fault plan: injected faults
    // are positional, so forking would change what each job observes.
    run.warmGroups.assign(jobs.size(), nullptr);
    if (policy.checkpoint.warmPrefixFrames > 0 && policy.faults.empty()) {
        using GroupKey =
            std::tuple<std::string, std::uint32_t, std::uint32_t,
                       std::uint32_t, std::uint32_t, std::uint64_t>;
        std::map<GroupKey, std::vector<std::size_t>> groups;
        for (std::size_t index : pending) {
            const SweepJob &job = jobs[index];
            if (!job.spec
                || job.frames <= policy.checkpoint.warmPrefixFrames)
                continue;
            groups[GroupKey{job.spec->abbrev, job.config.screenWidth,
                            job.config.screenHeight, job.frames,
                            job.firstFrame,
                            job.config.warmPrefixHash()}]
                .push_back(index);
        }
        for (const auto &[key, members] : groups) {
            if (members.size() < 2)
                continue;
            auto group = std::make_shared<WarmGroup>();
            for (std::size_t index : members)
                run.warmGroups[index] = group;
        }
    }

    // --- Chains: quarantine needs same-config jobs serialized ---------
    // (deterministic strike counting); otherwise every job is its own
    // chain and the pool keeps full parallelism.
    std::vector<std::vector<std::size_t>> chains;
    if (policy.quarantineThreshold > 0) {
        std::unordered_map<std::uint64_t, std::size_t> chain_of;
        for (std::size_t index : pending) {
            auto [it, inserted] =
                chain_of.try_emplace(run.hashes[index], chains.size());
            if (inserted)
                chains.emplace_back();
            chains[it->second].push_back(index);
        }
    } else {
        chains.reserve(pending.size());
        for (std::size_t index : pending)
            chains.push_back({index});
    }

    const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        workerCount, chains.empty() ? 1 : chains.size()));
    if (workers <= 1) {
        for (const std::vector<std::size_t> &chain : chains)
            for (std::size_t index : chain)
                runPolicyJob(run, index);
    } else {
        std::vector<WorkerQueue> queues(workers);
        for (std::size_t c = 0; c < chains.size(); ++c)
            queues[c % workers].push(c);

        auto work = [&](unsigned self) {
            while (true) {
                std::optional<std::size_t> chain = queues[self].pop();
                for (unsigned k = 1; !chain && k < workers; ++k)
                    chain = queues[(self + k) % workers].steal();
                if (!chain)
                    return;
                for (std::size_t index : chains[*chain])
                    runPolicyJob(run, index);
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(work, w);
        for (std::thread &t : pool)
            t.join();
    }

    out.killed = run.killFlag.load(std::memory_order_relaxed);
    out.warmPrefixForks =
        run.warmForks.load(std::memory_order_relaxed);
    return out;
}

} // namespace libra
