/**
 * @file
 * Worker pool driving the Phase-A window execution of the sharded
 * simulation engine (see DESIGN.md §8).
 *
 * A pool of `threads` total lanes runs parallelFor(count, fn): the
 * calling thread participates as lane 0 and `threads - 1` persistent
 * workers take the remaining lanes. Indices are assigned statically
 * (lane t runs indices t, t + threads, ...), so the index→lane mapping
 * is a pure function of (count, threads) — no work stealing, no
 * dynamic scheduling. The engine relies on that: a shard's events are
 * only ever executed by one lane per window, and determinism is
 * preserved by construction rather than by ordering recovery.
 *
 * Windows are short (one L2-latency's worth of events), so the barrier
 * cost dominates if workers park on every window. Workers therefore
 * spin briefly on the generation counter before falling back to a
 * condition variable; the caller does the same while waiting for
 * completion.
 */

#ifndef LIBRA_SIM_SIM_THREAD_POOL_HH
#define LIBRA_SIM_SIM_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace libra
{

class SimThreadPool
{
  public:
    /** @param threads total lanes including the caller (min 1). */
    explicit SimThreadPool(std::uint32_t threads);
    ~SimThreadPool();

    SimThreadPool(const SimThreadPool &) = delete;
    SimThreadPool &operator=(const SimThreadPool &) = delete;

    std::uint32_t threads() const { return laneCount; }

    /**
     * Run fn(i) for every i in [0, count), partitioned statically over
     * the lanes. Returns after every call completed (full barrier; the
     * completing workers' writes happen-before the return). fn must not
     * call back into the pool.
     */
    void parallelFor(std::uint32_t count,
                     const std::function<void(std::uint32_t)> &fn);

  private:
    void workerLoop(std::uint32_t lane);
    void runLane(std::uint32_t lane);

    const std::uint32_t laneCount;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable wakeCv; //!< workers wait for a new epoch
    std::condition_variable doneCv; //!< caller waits for completion

    // Published under mtx before the epoch bump; read by workers after
    // they observe the new epoch (acquire).
    const std::function<void(std::uint32_t)> *job = nullptr;
    std::uint32_t jobCount = 0;

    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint32_t> lanesDone{0};
    std::atomic<bool> stopping{false};
};

/**
 * Oversubscription guard shared by the bench drivers: with @p jobs
 * sweep workers each running @p sim_threads simulation lanes, clamp the
 * job count so jobs * sim_threads does not exceed @p hardware (the
 * machine's logical CPU count). Returns the clamped job count, always
 * at least 1. sim_threads == 0 (the sequential engine) counts as one
 * lane; hardware == 0 (unknown) leaves @p jobs untouched.
 */
std::uint32_t clampOversubscribedJobs(std::uint32_t jobs,
                                      std::uint32_t sim_threads,
                                      std::uint32_t hardware);

} // namespace libra

#endif // LIBRA_SIM_SIM_THREAD_POOL_HH
