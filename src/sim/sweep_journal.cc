#include "sim/sweep_journal.hh"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <unistd.h>

#include "common/log.hh"
#include "sim/sweep.hh"
#include "trace/json.hh"

namespace libra
{

namespace
{

constexpr const char *kSchema = "libra.sweep_journal/1";

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

Result<std::uint64_t>
hexU64(const std::string &text, const char *what)
{
    std::uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(
        text.data(), text.data() + text.size(), value, 16);
    if (ec != std::errc() || ptr != text.data() + text.size()
        || text.empty()) {
        return Status::error(ErrorCode::CorruptData, "journal: bad hex ",
                             what, ": '", text, "'");
    }
    return value;
}

/** Exact u64 from a JSON number (the parser keeps the raw literal, so
 *  values above 2^53 are not squeezed through a double). */
Result<std::uint64_t>
asU64(const JsonValue *v, const char *what)
{
    if (!v || !v->isNumber()) {
        return Status::error(ErrorCode::CorruptData, "journal: missing ",
                             what);
    }
    if (v->str.find_first_of(".eE+-") != std::string::npos) {
        return Status::error(ErrorCode::CorruptData, "journal: ", what,
                             " is not a non-negative integer: '", v->str,
                             "'");
    }
    std::uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(
        v->str.data(), v->str.data() + v->str.size(), value);
    if (ec != std::errc() || ptr != v->str.data() + v->str.size()) {
        return Status::error(ErrorCode::CorruptData, "journal: bad ",
                             what, ": '", v->str, "'");
    }
    return value;
}

Result<double>
asDouble(const JsonValue *v, const char *what)
{
    if (!v || !v->isNumber()) {
        return Status::error(ErrorCode::CorruptData, "journal: missing ",
                             what);
    }
    return v->number;
}

/** Fetch, narrow and assign helpers so the field lists below stay
 *  one line per field. */
#define JOURNAL_GET_U64(obj, name, dest)                                  \
    do {                                                                  \
        Result<std::uint64_t> r_ = asU64((obj).find(name), name);         \
        if (!r_.isOk())                                                   \
            return r_.status();                                           \
        dest = *r_;                                                       \
    } while (0)

#define JOURNAL_GET_U32(obj, name, dest)                                  \
    do {                                                                  \
        Result<std::uint64_t> r_ = asU64((obj).find(name), name);         \
        if (!r_.isOk())                                                   \
            return r_.status();                                           \
        dest = static_cast<std::uint32_t>(*r_);                           \
    } while (0)

#define JOURNAL_GET_DOUBLE(obj, name, dest)                               \
    do {                                                                  \
        Result<double> r_ = asDouble((obj).find(name), name);             \
        if (!r_.isOk())                                                   \
            return r_.status();                                           \
        dest = *r_;                                                       \
    } while (0)

void
u64Array(JsonWriter &w, const std::vector<std::uint64_t> &values)
{
    w.beginArray();
    for (std::uint64_t v : values)
        w.value(v);
    w.endArray();
}

Result<std::vector<std::uint64_t>>
u64ArrayFrom(const JsonValue *v, const char *what)
{
    if (!v || !v->isArray()) {
        return Status::error(ErrorCode::CorruptData, "journal: missing ",
                             what);
    }
    std::vector<std::uint64_t> out;
    out.reserve(v->items.size());
    for (const JsonValue &item : v->items) {
        Result<std::uint64_t> r = asU64(&item, what);
        if (!r.isOk())
            return r.status();
        out.push_back(*r);
    }
    return out;
}

void
frameToJson(JsonWriter &w, const FrameStats &fs)
{
    w.beginObject();
    w.key("frame_index"); w.value(std::uint64_t(fs.frameIndex));
    w.key("total_cycles"); w.value(std::uint64_t(fs.totalCycles));
    w.key("geom_cycles"); w.value(std::uint64_t(fs.geomCycles));
    w.key("raster_cycles"); w.value(std::uint64_t(fs.rasterCycles));
    w.key("dram_reads"); w.value(fs.dramReads);
    w.key("dram_writes"); w.value(fs.dramWrites);
    w.key("dram_activates"); w.value(fs.dramActivates);
    w.key("avg_dram_read_latency"); w.value(fs.avgDramReadLatency);
    w.key("texture_hit_ratio"); w.value(fs.textureHitRatio);
    w.key("avg_texture_latency"); w.value(fs.avgTextureLatency);
    w.key("texture_requests"); w.value(fs.textureRequests);
    w.key("texture_misses"); w.value(fs.textureMisses);
    w.key("texture_l1_accesses"); w.value(fs.textureL1Accesses);
    w.key("l2_hit_ratio"); w.value(fs.l2HitRatio);
    w.key("replication_ratio"); w.value(fs.replicationRatio);
    w.key("instructions"); w.value(fs.instructions);
    w.key("fragments"); w.value(fs.fragments);
    w.key("warps"); w.value(fs.warps);
    w.key("quads"); w.value(fs.quads);
    w.key("tile_dram"); u64Array(w, fs.tileDram);
    w.key("tile_instr"); u64Array(w, fs.tileInstr);
    w.key("dram_timeline");
    w.beginArray();
    for (std::uint32_t v : fs.dramTimeline)
        w.value(std::uint64_t(v));
    w.endArray();
    w.key("dram_timeline_interval");
    w.value(std::uint64_t(fs.dramTimelineInterval));
    w.key("ru_phases");
    w.beginArray();
    for (const auto &phases : fs.ruPhases) {
        w.beginArray();
        for (std::uint64_t v : phases)
            w.value(v);
        w.endArray();
    }
    w.endArray();
    w.key("energy");
    w.beginObject();
    w.key("core_mj"); w.value(fs.energy.coreMj);
    w.key("cache_mj"); w.value(fs.energy.cacheMj);
    w.key("dram_mj"); w.value(fs.energy.dramMj);
    w.key("fixed_function_mj"); w.value(fs.energy.fixedFunctionMj);
    w.key("static_mj"); w.value(fs.energy.staticMj);
    w.key("total_mj"); w.value(fs.energy.totalMj);
    w.endObject();
    w.key("temperature_order"); w.value(fs.temperatureOrder);
    w.key("supertile_size"); w.value(std::uint64_t(fs.supertileSize));
    w.key("ranking_cycles"); w.value(fs.rankingCycles);
    if (!fs.image.empty()) {
        // Pixel hashes use all 64 bits; hex strings round-trip exactly
        // where JSON numbers (doubles in the parser) could not.
        w.key("image");
        w.beginArray();
        for (std::uint64_t px : fs.image)
            w.value(hex16(px));
        w.endArray();
    }
    w.endObject();
}

Result<FrameStats>
frameFromJson(const JsonValue &v)
{
    if (!v.isObject()) {
        return Status::error(ErrorCode::CorruptData,
                             "journal: frame is not an object");
    }
    FrameStats fs;
    JOURNAL_GET_U32(v, "frame_index", fs.frameIndex);
    JOURNAL_GET_U64(v, "total_cycles", fs.totalCycles);
    JOURNAL_GET_U64(v, "geom_cycles", fs.geomCycles);
    JOURNAL_GET_U64(v, "raster_cycles", fs.rasterCycles);
    JOURNAL_GET_U64(v, "dram_reads", fs.dramReads);
    JOURNAL_GET_U64(v, "dram_writes", fs.dramWrites);
    JOURNAL_GET_U64(v, "dram_activates", fs.dramActivates);
    JOURNAL_GET_DOUBLE(v, "avg_dram_read_latency", fs.avgDramReadLatency);
    JOURNAL_GET_DOUBLE(v, "texture_hit_ratio", fs.textureHitRatio);
    JOURNAL_GET_DOUBLE(v, "avg_texture_latency", fs.avgTextureLatency);
    JOURNAL_GET_U64(v, "texture_requests", fs.textureRequests);
    JOURNAL_GET_U64(v, "texture_misses", fs.textureMisses);
    JOURNAL_GET_U64(v, "texture_l1_accesses", fs.textureL1Accesses);
    JOURNAL_GET_DOUBLE(v, "l2_hit_ratio", fs.l2HitRatio);
    JOURNAL_GET_DOUBLE(v, "replication_ratio", fs.replicationRatio);
    JOURNAL_GET_U64(v, "instructions", fs.instructions);
    JOURNAL_GET_U64(v, "fragments", fs.fragments);
    JOURNAL_GET_U64(v, "warps", fs.warps);
    JOURNAL_GET_U64(v, "quads", fs.quads);

    Result<std::vector<std::uint64_t>> tile_dram =
        u64ArrayFrom(v.find("tile_dram"), "tile_dram");
    if (!tile_dram.isOk())
        return tile_dram.status();
    fs.tileDram = std::move(*tile_dram);

    Result<std::vector<std::uint64_t>> tile_instr =
        u64ArrayFrom(v.find("tile_instr"), "tile_instr");
    if (!tile_instr.isOk())
        return tile_instr.status();
    fs.tileInstr = std::move(*tile_instr);

    Result<std::vector<std::uint64_t>> timeline =
        u64ArrayFrom(v.find("dram_timeline"), "dram_timeline");
    if (!timeline.isOk())
        return timeline.status();
    fs.dramTimeline.reserve(timeline->size());
    for (std::uint64_t t : *timeline)
        fs.dramTimeline.push_back(static_cast<std::uint32_t>(t));

    JOURNAL_GET_U32(v, "dram_timeline_interval", fs.dramTimelineInterval);

    const JsonValue *phases = v.find("ru_phases");
    if (!phases || !phases->isArray()) {
        return Status::error(ErrorCode::CorruptData,
                             "journal: missing ru_phases");
    }
    for (const JsonValue &unit : phases->items) {
        Result<std::vector<std::uint64_t>> row =
            u64ArrayFrom(&unit, "ru_phases");
        if (!row.isOk())
            return row.status();
        if (row->size() != kNumRuPhases) {
            return Status::error(ErrorCode::CorruptData,
                                 "journal: ru_phases row has ",
                                 row->size(), " entries, expected ",
                                 kNumRuPhases);
        }
        std::array<std::uint64_t, kNumRuPhases> arr{};
        std::copy(row->begin(), row->end(), arr.begin());
        fs.ruPhases.push_back(arr);
    }

    const JsonValue *energy = v.find("energy");
    if (!energy || !energy->isObject()) {
        return Status::error(ErrorCode::CorruptData,
                             "journal: missing energy");
    }
    JOURNAL_GET_DOUBLE(*energy, "core_mj", fs.energy.coreMj);
    JOURNAL_GET_DOUBLE(*energy, "cache_mj", fs.energy.cacheMj);
    JOURNAL_GET_DOUBLE(*energy, "dram_mj", fs.energy.dramMj);
    JOURNAL_GET_DOUBLE(*energy, "fixed_function_mj",
                       fs.energy.fixedFunctionMj);
    JOURNAL_GET_DOUBLE(*energy, "static_mj", fs.energy.staticMj);
    JOURNAL_GET_DOUBLE(*energy, "total_mj", fs.energy.totalMj);

    const JsonValue *temp = v.find("temperature_order");
    if (!temp || temp->kind != JsonValue::Kind::Bool) {
        return Status::error(ErrorCode::CorruptData,
                             "journal: missing temperature_order");
    }
    fs.temperatureOrder = temp->boolean;
    JOURNAL_GET_U32(v, "supertile_size", fs.supertileSize);
    JOURNAL_GET_U64(v, "ranking_cycles", fs.rankingCycles);

    if (const JsonValue *image = v.find("image")) {
        if (!image->isArray()) {
            return Status::error(ErrorCode::CorruptData,
                                 "journal: image is not an array");
        }
        fs.image.reserve(image->items.size());
        for (const JsonValue &px : image->items) {
            if (!px.isString()) {
                return Status::error(ErrorCode::CorruptData,
                                     "journal: image pixel is not a "
                                     "hex string");
            }
            Result<std::uint64_t> value = hexU64(px.str, "image pixel");
            if (!value.isOk())
                return value.status();
            fs.image.push_back(*value);
        }
    }
    return fs;
}

} // namespace

std::string
sweepJobKey(const SweepJob &job)
{
    std::ostringstream os;
    os << (job.spec ? job.spec->abbrev : "?") << ':'
       << job.config.screenWidth << 'x' << job.config.screenHeight
       << ":f" << job.frames << '@' << job.firstFrame << ":cfg:"
       << hex16(job.config.configHash());
    return os.str();
}

void
runResultToJson(JsonWriter &w, const RunResult &r)
{
    w.beginObject();
    w.key("benchmark");
    w.value(r.benchmark);
    w.key("frames");
    w.beginArray();
    for (const FrameStats &fs : r.frames)
        frameToJson(w, fs);
    w.endArray();
    w.key("skipped_frames");
    w.beginArray();
    for (std::uint32_t f : r.skippedFrames)
        w.value(std::uint64_t(f));
    w.endArray();
    w.key("counters");
    w.beginObject();
    for (const auto &[name, value] : r.counters) {
        w.key(name);
        w.value(value);
    }
    w.endObject();
    w.endObject();
}

Result<RunResult>
runResultFromJson(const JsonValue &v)
{
    if (!v.isObject()) {
        return Status::error(ErrorCode::CorruptData,
                             "journal: result is not an object");
    }
    RunResult r;
    const JsonValue *bench = v.find("benchmark");
    if (!bench || !bench->isString()) {
        return Status::error(ErrorCode::CorruptData,
                             "journal: missing benchmark name");
    }
    r.benchmark = bench->str;

    const JsonValue *frames = v.find("frames");
    if (!frames || !frames->isArray()) {
        return Status::error(ErrorCode::CorruptData,
                             "journal: missing frames");
    }
    for (const JsonValue &frame : frames->items) {
        Result<FrameStats> fs = frameFromJson(frame);
        if (!fs.isOk())
            return fs.status();
        r.frames.push_back(std::move(*fs));
    }

    Result<std::vector<std::uint64_t>> skipped =
        u64ArrayFrom(v.find("skipped_frames"), "skipped_frames");
    if (!skipped.isOk())
        return skipped.status();
    for (std::uint64_t f : *skipped)
        r.skippedFrames.push_back(static_cast<std::uint32_t>(f));

    const JsonValue *counters = v.find("counters");
    if (!counters || !counters->isObject()) {
        return Status::error(ErrorCode::CorruptData,
                             "journal: missing counters");
    }
    for (const auto &[name, value] : counters->members) {
        Result<std::uint64_t> count = asU64(&value, name.c_str());
        if (!count.isOk())
            return count.status();
        r.counters[name] = *count;
    }
    return r;
}

Result<SweepJournal>
SweepJournal::open(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (!f) {
        return Status::error(ErrorCode::IoError, "journal: cannot open ",
                             path, ": ", std::strerror(errno));
    }
    SweepJournal journal;
    journal.file.reset(f);
    journal.filePath = path;
    return journal;
}

Status
SweepJournal::append(const JournalRecord &record)
{
    if (killedFlag)
        return Status::ok(); // the "process" is dead; bytes go nowhere
    if (!file) {
        return Status::error(ErrorCode::FailedPrecondition,
                             "journal: append on a closed journal");
    }

    JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value(kSchema);
    w.key("key");
    w.value(record.key);
    w.key("ok");
    w.value(record.ok);
    w.key("attempts");
    w.value(std::uint64_t(record.attempts));
    if (record.ok) {
        w.key("result");
        runResultToJson(w, record.result);
    } else {
        w.key("code");
        w.value(errorCodeName(record.code));
        w.key("message");
        w.value(record.message);
    }
    w.endObject();
    std::string line = w.str();
    line += '\n';

    ++appendCount;
    if (killAt != 0 && appendCount == killAt) {
        // Simulated kill(9) mid-write: half the line reaches the file,
        // no newline, no fsync, and the process never writes again.
        std::fwrite(line.data(), 1, line.size() / 2, file.get());
        std::fflush(file.get());
        killedFlag = true;
        return Status::ok();
    }

    if (std::fwrite(line.data(), 1, line.size(), file.get())
        != line.size()) {
        return Status::error(ErrorCode::IoError, "journal: short write "
                             "to ", filePath);
    }
    if (std::fflush(file.get()) != 0
        || ::fsync(::fileno(file.get())) != 0) {
        return Status::error(ErrorCode::IoError, "journal: flush/fsync "
                             "of ", filePath, " failed: ",
                             std::strerror(errno));
    }
    return Status::ok();
}

Result<std::vector<JournalRecord>>
SweepJournal::load(const std::string &path)
{
    std::vector<JournalRecord> records;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return records; // no journal yet: nothing completed

    std::string text;
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        return Status::error(ErrorCode::IoError, "journal: read of ",
                             path, " failed");
    }

    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        if (end > start)
            lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }

    for (std::size_t i = 0; i < lines.size(); ++i) {
        const bool last = i + 1 == lines.size();
        // A record is only durable once its newline hit the disk; a
        // final line without one is the torn tail of a killed process.
        const bool has_newline =
            last ? text.size() >= 1 && text.back() == '\n' : true;

        Result<JsonValue> doc = parseJson(lines[i]);
        if (!doc.isOk() || !has_newline) {
            if (last) {
                warn("journal ", path, ": discarding torn trailing "
                     "line (", lines[i].size(), " bytes) — interrupted "
                     "append");
                break;
            }
            return Status::error(ErrorCode::CorruptData, "journal ",
                                 path, ": line ", i + 1,
                                 " is unparseable: ",
                                 doc.status().message());
        }

        const JsonValue &v = *doc;
        const JsonValue *schema = v.find("schema");
        if (!schema || !schema->isString() || schema->str != kSchema) {
            return Status::error(ErrorCode::CorruptData, "journal ",
                                 path, ": line ", i + 1,
                                 " has wrong schema (expected ",
                                 kSchema, ")");
        }

        JournalRecord record;
        const JsonValue *key = v.find("key");
        const JsonValue *ok = v.find("ok");
        if (!key || !key->isString() || !ok
            || ok->kind != JsonValue::Kind::Bool) {
            return Status::error(ErrorCode::CorruptData, "journal ",
                                 path, ": line ", i + 1,
                                 " lacks key/ok");
        }
        record.key = key->str;
        record.ok = ok->boolean;
        JOURNAL_GET_U32(v, "attempts", record.attempts);

        if (record.ok) {
            const JsonValue *result = v.find("result");
            if (!result) {
                return Status::error(ErrorCode::CorruptData, "journal ",
                                     path, ": line ", i + 1,
                                     " ok without result");
            }
            Result<RunResult> parsed = runResultFromJson(*result);
            if (!parsed.isOk())
                return parsed.status();
            record.result = std::move(*parsed);
        } else {
            const JsonValue *code = v.find("code");
            const JsonValue *message = v.find("message");
            if (!code || !code->isString() || !message
                || !message->isString()) {
                return Status::error(ErrorCode::CorruptData, "journal ",
                                     path, ": line ", i + 1,
                                     " failure without code/message");
            }
            record.code = ErrorCode::Unavailable;
            for (ErrorCode candidate :
                 {ErrorCode::InvalidArgument, ErrorCode::NotFound,
                  ErrorCode::IoError, ErrorCode::CorruptData,
                  ErrorCode::WatchdogExpired, ErrorCode::NoProgress,
                  ErrorCode::FailedPrecondition,
                  ErrorCode::InvariantViolation,
                  ErrorCode::DeadlineExceeded, ErrorCode::Unavailable}) {
                if (code->str == errorCodeName(candidate)) {
                    record.code = candidate;
                    break;
                }
            }
            record.message = message->str;
        }
        records.push_back(std::move(record));
    }
    return records;
}

} // namespace libra
