/**
 * @file
 * Global event queue driving the timing simulation.
 *
 * libra-sim is event-driven: every latency-bearing resource schedules a
 * callback at the tick where its state changes, instead of being ticked
 * every cycle. Events scheduled for the same tick execute in scheduling
 * order (a stable sequence number breaks ties) so simulations are fully
 * deterministic.
 *
 * Performance (the simulator's own hot path — a single FHD frame is
 * hundreds of thousands of events):
 *
 *  - The priority heap holds 24-byte POD entries {when, seq, slot};
 *    callbacks live in a side pool and never move during heap sifts.
 *    The old design kept the 48-byte SmallCallback inside the heap
 *    element, so every sift step paid an indirect relocate call (and a
 *    nested one for captured MemCallbacks) — the single largest cost in
 *    the whole simulator under gprof.
 *  - Callback slots are recycled through a free-list, so steady-state
 *    scheduling performs no allocation.
 *  - Events scheduled for the *current* tick bypass the heap entirely:
 *    they are appended to a same-tick FIFO batch and popped in O(1).
 *    This is order-correct because every heap entry for the current
 *    tick predates (has a smaller seq than) anything appended to the
 *    batch after the tick started.
 *
 * The observable semantics — execution in (when, seq) order — are
 * identical to the original heap-of-events design; the differential
 * equivalence suite pins that down with byte-identical counter dumps.
 */

#ifndef LIBRA_SIM_EVENT_QUEUE_HH
#define LIBRA_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/callback.hh"

namespace libra
{

class SnapshotWriter;
class SnapshotReader;

/**
 * Deferred work item.
 *
 * Inline capacity is 40 bytes: room for the largest audited in-tree
 * capture — a MemCallback (32 bytes) plus a completion Tick, the shape
 * every cache/DRAM completion wrap uses. Captures up to five pointers
 * never allocate; larger captures fail to compile (see callback.hh) —
 * move shared state into a single shared_ptr block instead.
 */
using EventCallback = SmallCallback<void(), 40>;

/**
 * Deterministic event queue: POD min-heap over pooled callback slots,
 * with a same-tick FIFO fast path.
 *
 * A simulation owns exactly one EventQueue; components keep a reference
 * and schedule callbacks against it. Time only moves forward: scheduling
 * in the past is a simulator bug.
 */
class EventQueue
{
  public:
    EventQueue()
    {
        heap.reserve(kInitialCapacity);
        slots.reserve(kInitialCapacity);
        freeSlots.reserve(kInitialCapacity);
        nowQ.reserve(kInitialCapacity);
    }
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    Tick now() const { return curTick; }

    /** Schedule @p cb to run at absolute tick @p when (>= now()). */
    void schedule(Tick when, EventCallback cb);

    /** Schedule @p cb to run @p delta ticks from now. */
    void scheduleAfter(Tick delta, EventCallback cb)
    {
        schedule(curTick + delta, std::move(cb));
    }

    bool empty() const { return heap.empty() && nowHead == nowQ.size(); }

    std::size_t pending() const
    {
        return heap.size() + (nowQ.size() - nowHead);
    }

    /** Tick of the earliest pending event (maxTick when empty). */
    Tick nextEventTick() const
    {
        if (nowHead != nowQ.size())
            return curTick;
        return heap.empty() ? maxTick : heap.front().when;
    }

    /**
     * Pop and execute the earliest event, advancing now().
     * @return false when the queue was empty.
     */
    bool runOne();

    /**
     * Run until the queue drains or the next event is past @p limit.
     * @return the number of events executed.
     */
    std::uint64_t runUntil(Tick limit = maxTick);

    /**
     * Jump now() forward to @p when without executing anything. Only
     * legal while no pending event predates @p when — used by the
     * sharded engine to align every shard's clock at frame boundaries
     * and window barriers. A no-op when @p when is in the past.
     */
    void advanceTo(Tick when);

    /** Total events executed since construction. */
    std::uint64_t eventsExecuted() const { return executed; }

    /**
     * Serialize the clock state (now, sequence, executed). Only legal
     * on a drained queue — pending events are transient frame-internal
     * machinery and are never snapshotted (see check/snapshot.hh).
     */
    void exportState(SnapshotWriter &w) const;

    /** Restore what exportState() wrote; requires an empty queue. */
    void importState(SnapshotReader &r);

  private:
    /**
     * Pre-reserved capacity of the heap, the callback pool and its
     * free-list. Scheduling is allocation-free until the number of
     * *pending* events first exceeds this (the vectors then grow
     * geometrically, as usual).
     */
    static constexpr std::size_t kInitialCapacity = 1024;

    /**
     * Heap element: plain data only, so sifts are branch-light memcpys.
     * The callback stays put in slots[slot] until execution.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    struct Later
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Take a pool slot for @p cb (free-list first, then grow). */
    std::uint32_t acquireSlot(EventCallback &&cb);

    /** Execute and release slot @p slot. */
    void runSlot(std::uint32_t slot);

    std::vector<HeapEntry> heap;

    /** Callback pool; slot indices are stable for a callback's whole
     *  pendency, so heap sifts never touch a callback. */
    std::vector<EventCallback> slots;
    std::vector<std::uint32_t> freeSlots;

    /** Same-tick batch: slots scheduled for curTick after curTick was
     *  reached, drained FIFO from nowHead. Recycled (cleared, capacity
     *  kept) whenever it drains. */
    std::vector<std::uint32_t> nowQ;
    std::size_t nowHead = 0;

    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

} // namespace libra

#endif // LIBRA_SIM_EVENT_QUEUE_HH
