/**
 * @file
 * Global event queue driving the timing simulation.
 *
 * libra-sim is event-driven: every latency-bearing resource schedules a
 * callback at the tick where its state changes, instead of being ticked
 * every cycle. Events scheduled for the same tick execute in scheduling
 * order (a stable sequence number breaks ties) so simulations are fully
 * deterministic.
 */

#ifndef LIBRA_SIM_EVENT_QUEUE_HH
#define LIBRA_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/callback.hh"

namespace libra
{

/**
 * Deferred work item.
 *
 * Inline capacity is 40 bytes: room for the largest audited in-tree
 * capture — a MemCallback (32 bytes) plus a completion Tick, the shape
 * every cache/DRAM completion wrap uses. Captures up to five pointers
 * never allocate; larger captures fail to compile (see callback.hh) —
 * move shared state into a single shared_ptr block instead.
 */
using EventCallback = SmallCallback<void(), 40>;

/**
 * Deterministic min-heap event queue.
 *
 * A simulation owns exactly one EventQueue; components keep a reference
 * and schedule callbacks against it. Time only moves forward: scheduling
 * in the past is a simulator bug.
 */
class EventQueue
{
  public:
    EventQueue() { heap.v.reserve(kInitialCapacity); }
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    Tick now() const { return curTick; }

    /** Schedule @p cb to run at absolute tick @p when (>= now()). */
    void schedule(Tick when, EventCallback cb);

    /** Schedule @p cb to run @p delta ticks from now. */
    void scheduleAfter(Tick delta, EventCallback cb)
    {
        schedule(curTick + delta, std::move(cb));
    }

    bool empty() const { return heap.empty(); }
    std::size_t pending() const { return heap.size(); }

    /** Tick of the earliest pending event (maxTick when empty). */
    Tick nextEventTick() const
    {
        return heap.empty() ? maxTick : heap.top().when;
    }

    /**
     * Pop and execute the earliest event, advancing now().
     * @return false when the queue was empty.
     */
    bool runOne();

    /**
     * Run until the queue drains or the next event is past @p limit.
     * @return the number of events executed.
     */
    std::uint64_t runUntil(Tick limit = maxTick);

    /** Total events executed since construction. */
    std::uint64_t eventsExecuted() const { return executed; }

  private:
    /**
     * Pre-reserved event-heap capacity. Scheduling is allocation-free
     * until the number of *pending* events first exceeds this (the
     * vector then grows geometrically, as usual).
     */
    static constexpr std::size_t kInitialCapacity = 1024;

    struct Event
    {
        Tick when;
        std::uint64_t seq;
        EventCallback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    // priority_queue's top() is const; we need to move the callback out,
    // so manage the heap manually over a vector.
    struct Heap
    {
        std::vector<Event> v;
        bool empty() const { return v.empty(); }
        std::size_t size() const { return v.size(); }
        const Event &top() const { return v.front(); }
        void
        push(Event e)
        {
            v.push_back(std::move(e));
            std::push_heap(v.begin(), v.end(), Later{});
        }
        Event
        pop()
        {
            std::pop_heap(v.begin(), v.end(), Later{});
            Event e = std::move(v.back());
            v.pop_back();
            return e;
        }
    };

    Heap heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

} // namespace libra

#endif // LIBRA_SIM_EVENT_QUEUE_HH
