/**
 * @file
 * Simulation watchdog: detects wedged simulations so a batch sweep can
 * skip a pathological frame instead of spinning forever.
 *
 * Two independent triggers, both disabled (0) by default so the
 * reproduction benches are unaffected:
 *
 *  - cycleBudget:      hard per-frame cycle ceiling. Trips when the
 *                      frame has consumed more simulated cycles than the
 *                      budget, whatever it is doing.
 *  - noProgressCycles: livelock detector. The driving loop marks
 *                      progress() at milestones (a tile flushed, the
 *                      geometry phase finished); if the simulated clock
 *                      advances more than this many cycles without a
 *                      mark, the simulation is churning events without
 *                      getting anywhere.
 *
 * The watchdog itself is pure bookkeeping (two compares per check), so
 * callers can poll it every event-loop iteration.
 */

#ifndef LIBRA_SIM_WATCHDOG_HH
#define LIBRA_SIM_WATCHDOG_HH

#include <cstdint>

#include "common/status.hh"
#include "common/types.hh"

namespace libra
{

/** Watchdog limits; 0 disables the corresponding trigger. */
struct WatchdogConfig
{
    std::uint64_t cycleBudget = 0;      //!< max cycles per frame
    std::uint64_t noProgressCycles = 0; //!< max cycles between marks
};

class Watchdog
{
  public:
    Watchdog(const WatchdogConfig &cfg, Tick start)
        : config(cfg), startTick(start), lastProgressTick(start)
    {}

    /** Record a forward-progress milestone at @p now. */
    void
    progress(Tick now)
    {
        if (now > lastProgressTick)
            lastProgressTick = now;
    }

    /**
     * @return ok while within limits; WatchdogExpired once the cycle
     * budget is exceeded; NoProgress once the livelock limit is hit.
     */
    Status check(Tick now) const;

    Tick start() const { return startTick; }
    Tick lastProgress() const { return lastProgressTick; }

  private:
    WatchdogConfig config;
    Tick startTick;
    Tick lastProgressTick;
};

} // namespace libra

#endif // LIBRA_SIM_WATCHDOG_HH
