/**
 * @file
 * Simulation watchdog: detects wedged simulations so a batch sweep can
 * skip a pathological frame instead of spinning forever.
 *
 * Two independent triggers, both disabled (0) by default so the
 * reproduction benches are unaffected:
 *
 *  - cycleBudget:      hard per-frame cycle ceiling. Trips when the
 *                      frame has consumed more simulated cycles than the
 *                      budget, whatever it is doing.
 *  - noProgressCycles: livelock detector. The driving loop marks
 *                      progress() at milestones (a tile flushed, the
 *                      geometry phase finished); if the simulated clock
 *                      advances more than this many cycles without a
 *                      mark, the simulation is churning events without
 *                      getting anywhere.
 *
 * A third, optional trigger extends the watchdog beyond simulated
 * cycles: a CancelToken carrying a *wall-clock* deadline and/or an
 * external cancellation flag. SweepRunner arms one per job so a sweep
 * can bound how long any single simulation may hold a worker thread
 * (cooperative cancellation: the simulation aborts at the next
 * event-loop check rather than being killed mid-update).
 *
 * The watchdog itself is pure bookkeeping (two compares per check; the
 * wall clock is only sampled every few thousand checks), so callers can
 * poll it every event-loop iteration.
 */

#ifndef LIBRA_SIM_WATCHDOG_HH
#define LIBRA_SIM_WATCHDOG_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.hh"
#include "common/types.hh"

namespace libra
{

/**
 * Cooperative cancellation handle, shared between the party that wants
 * a run stopped (a sweep's retry/deadline machinery, a service shutting
 * down) and the Watchdog polling inside the simulation's event loop.
 * Thread-safe: cancel() may be called from any thread.
 */
class CancelToken
{
  public:
    /** Request cancellation; the run aborts at its next poll. */
    void cancel() { cancelled.store(true, std::memory_order_relaxed); }

    /** Arm a wall-clock deadline (absolute steady_clock time). */
    void
    setDeadline(std::chrono::steady_clock::time_point when)
    {
        deadlineAt = when;
        hasDeadline = true;
    }

    /** Convenience: deadline @p ms milliseconds from now. */
    void
    setDeadlineAfterMs(std::uint64_t ms)
    {
        setDeadline(std::chrono::steady_clock::now()
                    + std::chrono::milliseconds(ms));
    }

    /** True once cancelled or past the deadline. */
    bool
    expired() const
    {
        if (cancelled.load(std::memory_order_relaxed))
            return true;
        return hasDeadline
            && std::chrono::steady_clock::now() >= deadlineAt;
    }

    bool wasCancelled() const
    {
        return cancelled.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelled{false};
    std::chrono::steady_clock::time_point deadlineAt{};
    bool hasDeadline = false; //!< set before the run starts, then const
};

/** Watchdog limits; 0 disables the corresponding trigger. */
struct WatchdogConfig
{
    std::uint64_t cycleBudget = 0;      //!< max cycles per frame
    std::uint64_t noProgressCycles = 0; //!< max cycles between marks

    /**
     * Optional cooperative cancellation / wall-clock deadline. Not a
     * property of the simulated machine: it never alters a single
     * statistic of a run that completes, only whether the run is
     * aborted early (DeadlineExceeded) — and is therefore excluded
     * from configHash().
     */
    std::shared_ptr<CancelToken> cancel;
};

class Watchdog
{
  public:
    Watchdog(const WatchdogConfig &cfg, Tick start)
        : config(cfg), startTick(start), lastProgressTick(start)
    {}

    /** Record a forward-progress milestone at @p now. */
    void
    progress(Tick now)
    {
        if (now > lastProgressTick)
            lastProgressTick = now;
    }

    /**
     * @return ok while within limits; WatchdogExpired once the cycle
     * budget is exceeded; NoProgress once the livelock limit is hit;
     * DeadlineExceeded once the attached CancelToken is cancelled or
     * past its wall-clock deadline. The token is only sampled every
     * kCancelPollInterval checks — reading the host clock per simulated
     * event would dominate the event loop.
     */
    Status check(Tick now) const;

    Tick start() const { return startTick; }
    Tick lastProgress() const { return lastProgressTick; }

    /** Checks between CancelToken samples (~µs of wall time apart). */
    static constexpr std::uint32_t kCancelPollInterval = 4096;

  private:
    WatchdogConfig config;
    Tick startTick;
    Tick lastProgressTick;
    mutable std::uint32_t cancelPollCountdown = kCancelPollInterval;
};

} // namespace libra

#endif // LIBRA_SIM_WATCHDOG_HH
