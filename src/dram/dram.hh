/**
 * @file
 * LPDDR4-class main-memory timing and energy model.
 *
 * This is the DRAMsim3 substitute (see DESIGN.md): per-channel request
 * queues served by an FR-FCFS scheduler (row hits first, oldest first,
 * with an age cap against starvation) over banked DRAM with an
 * open-page policy, row hit/miss/conflict timing, shared per-channel
 * data buses, and command energy counters. Its essential property for
 * the paper's mechanism is that *latency rises steeply with
 * instantaneous demand*: bursts queue behind bank and bus occupancy,
 * which is exactly the congestion the LIBRA scheduler smooths away
 * (paper §III, Fig. 7).
 *
 * All timing parameters are expressed in GPU clock cycles (800 MHz,
 * Table I), so the quoted 50-100 cycle unloaded latency of the paper
 * maps onto the rowHit/rowConflict service times.
 */

#ifndef LIBRA_DRAM_DRAM_HH
#define LIBRA_DRAM_DRAM_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "cache/mem_system.hh"
#include "check/faults_build.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace libra
{

class SnapshotWriter;
class SnapshotReader;

/** Configurable LPDDR4 timing/geometry, defaults follow Table I. */
struct DramConfig
{
    std::uint32_t channels = 2;
    std::uint32_t banksPerChannel = 8;
    std::uint32_t rowBytes = 2048;       //!< row-buffer (page) size
    std::uint32_t lineBytes = 64;        //!< transfer granularity
    /**
     * Channel/bank interleave granularity in lines. Real controllers
     * interleave at a coarser grain than one line so sequential streams
     * collect row hits before switching banks.
     */
    std::uint32_t interleaveLines = 8;

    Tick ctrlLatency = 16;   //!< controller + PHY pipeline
    Tick tCas = 15;          //!< column access (row already open)
    Tick tRcd = 15;          //!< activate to column access
    Tick tRp = 15;           //!< precharge
    Tick tBurst = 5;         //!< data-bus occupancy per 64B line
    Tick tWr = 8;            //!< write recovery added to bank busy

    /** FR-FCFS reorder window (queue entries scanned per decision). */
    std::uint32_t schedulerWindow = 32;

    /** Age (cycles) past which the oldest read preempts row hits. */
    Tick starvationLimit = 400;

    /**
     * Write-queue watermarks: reads have priority until the write queue
     * exceeds the high watermark, then writes drain down to the low
     * watermark (standard mobile-controller write buffering).
     */
    std::uint32_t writeHighWatermark = 48;
    std::uint32_t writeLowWatermark = 16;
};

/**
 * Per-request service record, exposed to an optional observer so the GPU
 * can feed the LIBRA temperature table and the Fig. 7 timeline.
 */
struct DramAccessInfo
{
    Addr addr;
    bool write;
    TrafficClass cls;
    std::uint32_t tileTag;
    Tick queued;    //!< arrival tick
    Tick complete;  //!< data available / write accepted
    bool rowHit;
};

/** Main memory: implements MemSink at cache-line granularity. */
class Dram : public MemSink
{
  public:
    Dram(EventQueue &eq, const DramConfig &cfg);

    void access(MemReq req) override;

    /** Register an observer invoked once per serviced line. */
    void setObserver(std::function<void(const DramAccessInfo &)> obs)
    {
        observer = std::move(obs);
    }

    /** Queued (not yet issued) requests on @p addr's channel. */
    std::size_t channelBacklog(Addr addr) const;

    /** Queued (not yet issued) requests across all channels. */
    std::size_t pendingRequests() const;

    /** Aggregate statistics group ("dram.*"). */
    const StatGroup &stats() const { return statGroup; }
    StatGroup &stats() { return statGroup; }

    /** Total data moved, in bytes. */
    std::uint64_t bytesTransferred() const
    {
        return (reads.value() + writes.value()) * config.lineBytes;
    }

    const DramConfig &cfg() const { return config; }

    /**
     * Serialize persistent state (bank rows, bus clocks, issue
     * sequence) for a frame-boundary snapshot. Only legal while
     * quiescent: non-empty queues or an armed wakeup imply pending
     * events and are asserted against (a drained queue always runs the
     * last wakeup event, which clears the flag — see armWakeup()).
     */
    void saveState(SnapshotWriter &w) const;

    /** Restore what saveState() wrote (geometry must match). */
    void loadState(SnapshotReader &r);

    // Statistics (public counters, registered in statGroup).
    Counter reads;
    Counter writes;
    Counter rowHits;
    Counter rowMisses;    //!< bank was idle/closed: activate only
    Counter rowConflicts; //!< different row open: precharge + activate
    Counter totalReadLatency;  //!< sum over reads, for mean latency
    Counter activates;
    Counter precharges;
    std::array<Counter, static_cast<std::size_t>(TrafficClass::NumClasses)>
        classReads;
    std::array<Counter, static_cast<std::size_t>(TrafficClass::NumClasses)>
        classWrites;

    /**
     * Fault-injection hooks (armed by Gpu from a FaultPlan; see
     * src/check/fault_injector): every `testStallEvery`th issued
     * command starts `testStallTicks` late, modeling controller
     * hiccups / thermal throttling bursts. 0 disables. Compiled out
     * with LIBRA_FAULTS=OFF.
     */
    std::uint64_t testStallEvery = 0;
    Tick testStallTicks = 0;

  private:
    struct Bank
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Tick readyAt = 0; //!< bank can accept a new command
    };

    struct Request
    {
        Addr addr;
        std::uint32_t bank;
        std::uint64_t row;
        bool write;
        Tick arrival;          //!< tick the request entered the queue
        TrafficClass cls;
        std::uint32_t tileTag;
        MemCallback onComplete; //!< may be empty
    };

    struct Channel
    {
        std::vector<Bank> banks;
        std::deque<Request> readQ;
        std::deque<Request> writeQ;
        bool drainingWrites = false;
        Tick busReadyAt = 0;     //!< data bus free
        bool wakeupScheduled = false;
        Tick wakeupAt = maxTick;
    };

    /** A request crossing the fixed-latency controller/PHY pipeline. */
    struct CtrlEntry
    {
        std::uint32_t channel;
        Request req;
    };

    /** Split an address into (channel, bank, row). */
    void mapAddress(Addr addr, std::uint32_t &channel, std::uint32_t &bank,
                    std::uint64_t &row) const;

    /** Enqueue one line-sized request. */
    void enqueueLine(Addr addr, bool write, TrafficClass cls,
                     std::uint32_t tile_tag, MemCallback cb);

    /** FR-FCFS: issue every request that can start now; re-arm timer. */
    void serviceChannel(std::uint32_t channel_idx);

    /** Pick an issueable request from @p q; -1 when none is ready. */
    int pickRequest(const Channel &channel, const std::deque<Request> &q,
                    bool allow_starvation, Tick now,
                    Tick &next_wake) const;

    /** Issue one request on a ready bank; returns its completion tick. */
    Tick issue(Channel &channel, Request &req);

    void armWakeup(std::uint32_t channel_idx, Tick when);

    EventQueue &queue;
    DramConfig config;
    // deque, not vector: Channel holds move-only Requests and deque
    // resize never relocates (vector::resize would require a copy ctor
    // because deque's move is not noexcept).
    std::deque<Channel> channelState;
    /** FIFO of requests inside the controller pipeline (see
     *  enqueueLine): drained front-first by the matching events. */
    std::deque<CtrlEntry> ctrlPipe;
    std::function<void(const DramAccessInfo &)> observer;
    std::uint64_t issueSeq = 0; //!< commands issued, for testStallEvery
    StatGroup statGroup{"dram"};
};

} // namespace libra

#endif // LIBRA_DRAM_DRAM_HH
