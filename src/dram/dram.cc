#include "dram/dram.hh"

#include <algorithm>
#include <memory>

#include "check/snapshot.hh"
#include "common/log.hh"

namespace libra
{

Dram::Dram(EventQueue &eq, const DramConfig &cfg)
    : queue(eq), config(cfg)
{
    libra_assert(config.channels > 0 && config.banksPerChannel > 0,
                 "degenerate DRAM geometry");
    channelState.resize(config.channels);
    for (auto &channel : channelState)
        channel.banks.resize(config.banksPerChannel);

    statGroup.add("reads", &reads);
    statGroup.add("writes", &writes);
    statGroup.add("row_hits", &rowHits);
    statGroup.add("row_misses", &rowMisses);
    statGroup.add("row_conflicts", &rowConflicts);
    statGroup.add("total_read_latency", &totalReadLatency);
    statGroup.add("activates", &activates);
    statGroup.add("precharges", &precharges);
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(TrafficClass::NumClasses); ++c) {
        const auto cls = static_cast<TrafficClass>(c);
        statGroup.add(std::string("reads_") + trafficClassName(cls),
                      &classReads[c]);
        statGroup.add(std::string("writes_") + trafficClassName(cls),
                      &classWrites[c]);
    }
}

void
Dram::mapAddress(Addr addr, std::uint32_t &channel, std::uint32_t &bank,
                 std::uint64_t &row) const
{
    // Chunk offset | channel | bank | row, with chunks of
    // interleaveLines lines: sequential streams get several row hits in
    // a bank before the stream hops to the next channel/bank, as with
    // real controller address maps.
    const Addr line = addr / config.lineBytes;
    const std::uint32_t chunk_lines = std::max(1u, config.interleaveLines);
    const Addr chunk = line / chunk_lines;
    channel = static_cast<std::uint32_t>(chunk % config.channels);
    const Addr per_channel = chunk / config.channels;
    bank = static_cast<std::uint32_t>(per_channel % config.banksPerChannel);
    const Addr per_bank = per_channel / config.banksPerChannel;
    const Addr line_in_bank = per_bank * chunk_lines + line % chunk_lines;
    row = line_in_bank / (config.rowBytes / config.lineBytes);
}

std::size_t
Dram::channelBacklog(Addr addr) const
{
    std::uint32_t channel, bank;
    std::uint64_t row;
    mapAddress(addr, channel, bank, row);
    return channelState[channel].readQ.size()
        + channelState[channel].writeQ.size();
}

std::size_t
Dram::pendingRequests() const
{
    std::size_t total = 0;
    for (const auto &channel : channelState)
        total += channel.readQ.size() + channel.writeQ.size();
    return total;
}

void
Dram::enqueueLine(Addr addr, bool write, TrafficClass cls,
                  std::uint32_t tile_tag, MemCallback cb)
{
    std::uint32_t channel_idx, bank;
    std::uint64_t row;
    mapAddress(addr, channel_idx, bank, row);

    Request req;
    req.addr = addr;
    req.bank = bank;
    req.row = row;
    req.write = write;
    req.arrival = queue.now();
    req.cls = cls;
    req.tileTag = tile_tag;
    req.onComplete = std::move(cb);

    // The controller/PHY pipeline delays visibility to the scheduler.
    // Every request crosses the pipe in exactly ctrlLatency cycles and
    // same-tick events run in scheduling order, so the pipe drains
    // strictly FIFO — the event only needs to capture `this`, keeping
    // the request itself out of the (size-bounded) event capture.
    ctrlPipe.push_back(CtrlEntry{channel_idx, std::move(req)});
    queue.scheduleAfter(config.ctrlLatency, [this] {
        libra_assert(!ctrlPipe.empty(), "DRAM ctrl pipe underflow");
        CtrlEntry entry = std::move(ctrlPipe.front());
        ctrlPipe.pop_front();
        Channel &ch = channelState[entry.channel];
        auto &q = entry.req.write ? ch.writeQ : ch.readQ;
        q.push_back(std::move(entry.req));
        libra_assert(q.size() < 2'000'000, "runaway DRAM queue");
        serviceChannel(entry.channel);
    });
}

Tick
Dram::issue(Channel &channel, Request &req)
{
    Bank &bank = channel.banks[req.bank];
    const Tick now = queue.now();
    libra_assert(bank.readyAt <= now, "issue to a busy bank");

    Tick cmd_start = now;
#if LIBRA_FAULTS_ENABLED
    if (testStallEvery != 0 && ++issueSeq % testStallEvery == 0)
        cmd_start += testStallTicks;
#endif
    bool row_hit = false;
    if (bank.rowOpen && bank.openRow == req.row) {
        row_hit = true;
        ++rowHits;
    } else if (!bank.rowOpen) {
        ++rowMisses;
        ++activates;
        cmd_start += config.tRcd;
    } else {
        ++rowConflicts;
        ++precharges;
        ++activates;
        cmd_start += config.tRp + config.tRcd;
    }
    bank.rowOpen = true;
    bank.openRow = req.row;

    // Column access, then the burst occupies the channel's data bus.
    const Tick data_ready = cmd_start + config.tCas;
    const Tick bus_start = std::max(data_ready, channel.busReadyAt);
    const Tick complete = bus_start + config.tBurst;
    channel.busReadyAt = complete;
    // Back-to-back column commands to the same bank are spaced by the
    // burst slot (tCCD ~ burst length); the bank does not wait for the
    // shared bus to drain, and writes add their recovery time.
    bank.readyAt = cmd_start + config.tBurst
        + (req.write ? config.tWr : 0);

    const std::size_t cls_idx = static_cast<std::size_t>(req.cls);
    if (req.write) {
        ++writes;
        ++classWrites[cls_idx];
    } else {
        ++reads;
        ++classReads[cls_idx];
        totalReadLatency += complete - req.arrival;
    }

    if (observer) {
        observer(DramAccessInfo{req.addr, req.write, req.cls, req.tileTag,
                                req.arrival, complete, row_hit});
    }
    if (req.onComplete) {
        auto cb = std::move(req.onComplete);
        queue.schedule(complete, [cb = std::move(cb), complete]() mutable {
            cb(complete);
        });
    }
    return complete;
}

int
Dram::pickRequest(const Channel &channel, const std::deque<Request> &q,
                  bool allow_starvation, Tick now, Tick &next_wake) const
{
    if (q.empty())
        return -1;
    const std::size_t window = std::min<std::size_t>(
        q.size(), std::max(1u, config.schedulerWindow));

    if (allow_starvation) {
        // Age cap: the oldest request preempts row-hit reordering.
        const Request &front = q.front();
        if (now >= front.arrival
            && now - front.arrival > config.starvationLimit) {
            const Bank &bank = channel.banks[front.bank];
            if (bank.readyAt <= now)
                return 0;
            next_wake = std::min(next_wake, bank.readyAt);
            return -1;
        }
    }
    // One pass instead of three (FR scan, FCFS scan, wake scan): hunt
    // for the first row hit on a ready bank while remembering the first
    // ready bank (the FCFS fallback) and the earliest bank-ready tick
    // (the wake time). The decision is unchanged: a row hit anywhere in
    // the window still beats the oldest ready request, and next_wake is
    // only committed when nothing can issue — exactly when every bank
    // in the window is busy, so the min covers the same set the old
    // third scan did.
    int first_ready = -1;
    Tick min_ready = maxTick;
    std::size_t i = 0;
    for (auto it = q.begin(); i < window; ++it, ++i) {
        const Request &req = *it;
        const Bank &bank = channel.banks[req.bank];
        if (bank.readyAt <= now) {
            if (bank.rowOpen && bank.openRow == req.row)
                return static_cast<int>(i); // FR: row hit wins
            if (first_ready < 0)
                first_ready = static_cast<int>(i);
        } else if (bank.readyAt < min_ready) {
            min_ready = bank.readyAt;
        }
    }
    if (first_ready >= 0)
        return first_ready; // FCFS: oldest ready request
    next_wake = std::min(next_wake, min_ready);
    return -1;
}

void
Dram::serviceChannel(std::uint32_t channel_idx)
{
    Channel &channel = channelState[channel_idx];
    Tick next_wake = maxTick;

    while (!channel.readQ.empty() || !channel.writeQ.empty()) {
        const Tick now = queue.now();

        // Only issue when the data bus will be consumable soon; keeping
        // the decision point close to service time lets late arrivals
        // take part in the FR-FCFS choice.
        const Tick lookahead = config.tRp + config.tRcd + config.tCas;
        if (channel.busReadyAt > now + lookahead) {
            next_wake = std::min(next_wake,
                                 channel.busReadyAt - lookahead);
            break;
        }

        // Write-drain hysteresis.
        if (channel.writeQ.size() >= config.writeHighWatermark)
            channel.drainingWrites = true;
        else if (channel.writeQ.size() <= config.writeLowWatermark)
            channel.drainingWrites = false;

        std::deque<Request> *source = nullptr;
        int pick = -1;
        // A starved read preempts even a write drain: posted writes can
        // always wait a little longer, a blocked warp cannot.
        if (!channel.readQ.empty()) {
            const Request &front = channel.readQ.front();
            if (now >= front.arrival
                && now - front.arrival > config.starvationLimit
                && channel.banks[front.bank].readyAt <= now) {
                pick = 0;
                source = &channel.readQ;
            }
        }
        if (!source && channel.drainingWrites) {
            pick = pickRequest(channel, channel.writeQ, false, now,
                               next_wake);
            if (pick >= 0)
                source = &channel.writeQ;
        }
        if (!source) {
            pick = pickRequest(channel, channel.readQ, true, now,
                               next_wake);
            if (pick >= 0) {
                source = &channel.readQ;
            } else if (!channel.drainingWrites) {
                // Opportunistic write when no read can issue.
                pick = pickRequest(channel, channel.writeQ, false, now,
                                   next_wake);
                if (pick >= 0)
                    source = &channel.writeQ;
            }
        }
        if (!source)
            break;

        Request req = std::move((*source)[static_cast<std::size_t>(pick)]);
        source->erase(source->begin() + pick);
        issue(channel, req);
    }

    armWakeup(channel_idx, next_wake);
}

void
Dram::armWakeup(std::uint32_t channel_idx, Tick when)
{
    if (when == maxTick)
        return;
    Channel &channel = channelState[channel_idx];
    if (channel.wakeupScheduled && channel.wakeupAt <= when)
        return;
    channel.wakeupScheduled = true;
    channel.wakeupAt = when;
    queue.schedule(when, [this, channel_idx, when] {
        Channel &ch = channelState[channel_idx];
        if (ch.wakeupAt == when) {
            ch.wakeupScheduled = false;
            ch.wakeupAt = maxTick;
        }
        serviceChannel(channel_idx);
    });
}

void
Dram::access(MemReq req)
{
    const Addr first_line = req.addr / config.lineBytes;
    const Addr last_line = (req.addr + std::max(req.size, 1u) - 1)
        / config.lineBytes;
    const std::size_t count =
        static_cast<std::size_t>(last_line - first_line) + 1;

    if (count == 1) {
        enqueueLine(first_line * config.lineBytes, req.write, req.cls,
                    req.tileTag, std::move(req.onComplete));
        return;
    }

    // Multi-line request: the caller's callback fires when the last
    // beat completes.
    const bool wants_completion = static_cast<bool>(req.onComplete);
    auto join = std::make_shared<SplitJoin>(count,
                                            std::move(req.onComplete));
    for (Addr line = first_line; line <= last_line; ++line) {
        MemCallback part;
        if (wants_completion)
            part = splitJoinPart(join);
        enqueueLine(line * config.lineBytes, req.write, req.cls,
                    req.tileTag, std::move(part));
    }
}

void
Dram::saveState(SnapshotWriter &w) const
{
    libra_assert(ctrlPipe.empty(), "DRAM snapshot with ctrl pipe busy");
    w.putU64(channelState.size());
    for (const Channel &ch : channelState) {
        libra_assert(ch.readQ.empty() && ch.writeQ.empty()
                         && !ch.wakeupScheduled,
                     "DRAM snapshot with a busy channel");
        w.putU64(ch.banks.size());
        for (const Bank &bank : ch.banks) {
            w.putBool(bank.rowOpen);
            w.putU64(bank.openRow);
            w.putU64(bank.readyAt);
        }
        w.putBool(ch.drainingWrites);
        w.putU64(ch.busReadyAt);
    }
    w.putU64(issueSeq);
}

void
Dram::loadState(SnapshotReader &r)
{
    if (!r.check(r.takeU64() == channelState.size(),
                 "DRAM channel count mismatches the configuration"))
        return;
    for (Channel &ch : channelState) {
        if (!r.check(r.takeU64() == ch.banks.size(),
                     "DRAM bank count mismatches the configuration"))
            return;
        for (Bank &bank : ch.banks) {
            bank.rowOpen = r.takeBool();
            bank.openRow = r.takeU64();
            bank.readyAt = r.takeU64();
        }
        ch.drainingWrites = r.takeBool();
        ch.busReadyAt = r.takeU64();
        // The wakeup event itself is transient; a drained queue always
        // leaves the flag cleared (saveState asserts it).
        ch.wakeupScheduled = false;
        ch.wakeupAt = maxTick;
    }
    issueSeq = r.takeU64();
}

} // namespace libra
